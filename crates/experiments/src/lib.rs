//! `experiments` — the harness that regenerates every table and figure of the
//! reproduced paper.
//!
//! * [`evaluate`] — runs any [`imaging::Segmenter`] over a dataset, reduces
//!   its output to foreground/background, scores it with mIOU and wall-clock
//!   runtime, and aggregates per-dataset summaries (the machinery behind
//!   Table III and Figs. 8–10).
//! * [`tables`] — Table I (θ ↔ threshold), Table II (θ ↔ segment count) and
//!   Table III (mIOU / runtime comparison).
//! * [`figures`] — Figs. 1–3 (worked example), 4 (multi-thresholding),
//!   5 (normalisation ablation), 6 (θ sweep on scenes), 7 (Otsu equivalence),
//!   8–9 (qualitative wins) and 10 (per-image θ adjustment).
//! * [`throughput`] — the batched `iqft-pipeline` service workload
//!   (`iqft-experiments throughput`), with the `PhaseTable` steady-state
//!   fast path and a byte-identity cross-check against serial segmentation.
//! * [`service`] — the network face: `iqft-experiments serve` boots the
//!   `iqft-serve` TCP daemon and `iqft-experiments loadgen` drives
//!   concurrent clients against it, with the same default-on byte-identity
//!   verification.
//! * [`plans`] — the shared `--plan` flag: an explicit
//!   [`seg_engine::PlanSpec`] string, `auto` (probe the host and take the
//!   fastest measured plan), or empty to fall back to the per-axis flags.
//!
//! The `iqft-experiments` binary exposes one subcommand per experiment; every
//! experiment is also callable as a library function so the benchmark crate
//! and the integration tests reuse the exact same code paths.
//!
//! Every experiment executes on a [`SegmentEngine`], selected once at the CLI
//! with `--backend serial|threads|rayon --threads N`; datasets are generated
//! and evaluated in parallel image batches, and the per-pixel segmenters use
//! the same engine machinery, so the single knob controls parallelism across
//! the whole harness.  Outputs are byte-identical across backends.
//!
//! # Example
//!
//! ```
//! // Every experiment is callable as a library function; Table I is a pure
//! // function of the θ ↔ threshold correspondence.
//! let table = experiments::tables::table1_text();
//! assert!(table.contains("Table I"));
//! assert!(table.contains("3π/4"));
//! ```

pub mod evaluate;
pub mod figures;
pub mod plans;
pub mod service;
pub mod tables;
pub mod throughput;

pub use evaluate::{
    evaluate_method, evaluate_method_with, evaluate_methods, evaluate_methods_with, DatasetSummary,
    ImageScore, Method, MethodSummary,
};
pub use seg_engine::SegmentEngine;
