//! Dataset-level evaluation of segmentation methods.
//!
//! Evaluation is batched through a [`SegmentEngine`]: the engine parallelises
//! over *images* (`SegmentEngine::map_images`) while each per-image segmenter
//! runs serially, so a dataset sweep saturates the machine without
//! oversubscribing it.  Label maps are byte-identical across backends and
//! thread counts; only the wall-clock fields vary.

use baselines::{KMeansSegmenter, OtsuSegmenter};
use datasets::LabeledImage;
use imaging::{LabelMap, RgbImage, Segmenter};
use iqft_seg::{reduce_to_foreground, ForegroundPolicy, IqftGraySegmenter, IqftRgbSegmenter};
use seg_engine::SegmentEngine;
use std::time::Instant;

/// The four methods of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// K-means clustering with `k = 2` (scikit-learn baseline).
    KMeans {
        /// RNG seed for the k-means++ initialisation.
        seed: u64,
    },
    /// Otsu thresholding (scikit-image baseline).
    Otsu,
    /// The IQFT-inspired RGB algorithm (Algorithm 1) with uniform θ.
    IqftRgb {
        /// The uniform angle parameter (the paper uses π).
        theta: f64,
    },
    /// The IQFT-inspired grayscale algorithm with angle θ.
    IqftGray {
        /// The angle parameter (the paper uses π).
        theta: f64,
    },
}

impl Method {
    /// The four methods in the paper's Table III column order, at the paper's
    /// configuration (θ = π, K-means k = 2).
    pub fn table3_methods(seed: u64) -> Vec<Method> {
        vec![
            Method::KMeans { seed },
            Method::Otsu,
            Method::IqftRgb {
                theta: std::f64::consts::PI,
            },
            Method::IqftGray {
                theta: std::f64::consts::PI,
            },
        ]
    }

    /// Builds the segmenter behind this method on the default engine.
    pub fn build(&self) -> Box<dyn Segmenter + Send + Sync> {
        self.build_with(SegmentEngine::default())
    }

    /// Builds the segmenter behind this method, executing whole-image calls
    /// on `engine`.
    pub fn build_with(&self, engine: SegmentEngine) -> Box<dyn Segmenter + Send + Sync> {
        match *self {
            Method::KMeans { seed } => Box::new(KMeansSegmenter::binary(seed).with_engine(engine)),
            Method::Otsu => Box::new(OtsuSegmenter::new().with_engine(engine)),
            Method::IqftRgb { theta } => Box::new(
                IqftRgbSegmenter::new(iqft_seg::ThetaParams::uniform(theta)).with_engine(engine),
            ),
            Method::IqftGray { theta } => {
                Box::new(IqftGraySegmenter::new(theta).with_engine(engine))
            }
        }
    }

    /// The display name used in tables.
    pub fn name(&self) -> String {
        match self {
            Method::KMeans { .. } => "K-means".to_string(),
            Method::Otsu => "OTSU".to_string(),
            Method::IqftRgb { .. } => "IQFT (RGB)".to_string(),
            Method::IqftGray { .. } => "IQFT (Grayscale)".to_string(),
        }
    }
}

/// Per-image evaluation record.
#[derive(Debug, Clone)]
pub struct ImageScore {
    /// The sample identifier.
    pub id: String,
    /// Foreground/background mIOU (eq. 18).
    pub miou: f64,
    /// Foreground IOU alone.
    pub iou_foreground: f64,
    /// Wall-clock segmentation time in seconds (segmentation only, excluding
    /// dataset generation and scoring).
    ///
    /// Measured inside the engine's image batch, so under a parallel backend
    /// sibling images contend for cores and the value overstates isolated
    /// per-image cost.  For a paper-faithful runtime comparison (Table III's
    /// runtime column) evaluate with `--backend serial`; label maps and all
    /// quality scores are backend-independent either way.
    pub runtime_secs: f64,
}

/// Aggregated result of one method on one dataset.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Method display name.
    pub method: String,
    /// Per-image scores, in dataset order.
    pub scores: Vec<ImageScore>,
    /// Mean of the per-image mIOU values (the paper's "Average mIOU").
    pub average_miou: f64,
    /// Total segmentation runtime over the dataset, in seconds.
    pub total_runtime_secs: f64,
    /// Fraction of images with mIOU below 0.1 (the paper's "poor
    /// performance" statistic).
    pub poor_fraction: f64,
}

/// All methods evaluated on one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSummary {
    /// Dataset display name.
    pub dataset: String,
    /// One summary per method, in input order.
    pub methods: Vec<MethodSummary>,
}

impl DatasetSummary {
    /// Fraction of images on which `method_a` strictly outperforms
    /// `method_b` in per-image mIOU.
    pub fn win_fraction(&self, method_a: &str, method_b: &str) -> f64 {
        let a = self
            .methods
            .iter()
            .find(|m| m.method == method_a)
            .expect("method_a present");
        let b = self
            .methods
            .iter()
            .find(|m| m.method == method_b)
            .expect("method_b present");
        assert_eq!(a.scores.len(), b.scores.len());
        if a.scores.is_empty() {
            return 0.0;
        }
        let wins = a
            .scores
            .iter()
            .zip(b.scores.iter())
            .filter(|(x, y)| x.miou > y.miou)
            .count();
        wins as f64 / a.scores.len() as f64
    }
}

/// Segments one image with `segmenter`, reduces to foreground/background with
/// `policy` and scores against the ground truth.
pub fn score_single(
    segmenter: &dyn Segmenter,
    image: &RgbImage,
    ground_truth: &LabelMap,
    policy: ForegroundPolicy,
) -> (LabelMap, f64, f64, f64) {
    let start = Instant::now();
    let raw = segmenter.segment_rgb(image);
    let runtime = start.elapsed().as_secs_f64();
    let binary = reduce_to_foreground(&raw, policy, Some(image), Some(ground_truth));
    let breakdown = metrics::miou_fg_bg(&binary, ground_truth);
    (binary, breakdown.miou, breakdown.foreground, runtime)
}

/// Evaluates one method over a slice of labelled samples, batching the
/// per-image work on `engine`.
///
/// Parallelism lives at the image level here; each image's segmenter runs
/// serially so the batch does not oversubscribe the machine.  The produced
/// label maps (and therefore every score) are byte-identical across engines.
pub fn evaluate_method_with(
    engine: &SegmentEngine,
    method: &Method,
    samples: &[LabeledImage],
    policy: ForegroundPolicy,
) -> MethodSummary {
    let segmenter = method.build_with(SegmentEngine::serial());
    let scores: Vec<ImageScore> = engine.map_images(samples, |sample| {
        let (_, miou, iou_fg, runtime) = score_single(
            segmenter.as_ref(),
            &sample.image,
            &sample.ground_truth,
            policy,
        );
        ImageScore {
            id: sample.id.clone(),
            miou,
            iou_foreground: iou_fg,
            runtime_secs: runtime,
        }
    });
    summarize(method.name(), scores)
}

/// Evaluates one method over a slice of labelled samples on the default
/// engine.
pub fn evaluate_method(
    method: &Method,
    samples: &[LabeledImage],
    policy: ForegroundPolicy,
) -> MethodSummary {
    evaluate_method_with(&SegmentEngine::default(), method, samples, policy)
}

fn summarize(method: String, scores: Vec<ImageScore>) -> MethodSummary {
    let n = scores.len().max(1) as f64;
    let average_miou = scores.iter().map(|s| s.miou).sum::<f64>() / n;
    let total_runtime_secs = scores.iter().map(|s| s.runtime_secs).sum();
    let poor_fraction = scores.iter().filter(|s| s.miou < 0.1).count() as f64 / n;
    MethodSummary {
        method,
        scores,
        average_miou,
        total_runtime_secs,
        poor_fraction,
    }
}

/// Evaluates several methods on the same samples, batching on `engine`.
pub fn evaluate_methods_with(
    engine: &SegmentEngine,
    dataset_name: &str,
    methods: &[Method],
    samples: &[LabeledImage],
    policy: ForegroundPolicy,
) -> DatasetSummary {
    DatasetSummary {
        dataset: dataset_name.to_string(),
        methods: methods
            .iter()
            .map(|m| evaluate_method_with(engine, m, samples, policy))
            .collect(),
    }
}

/// Evaluates several methods on the same samples on the default engine.
pub fn evaluate_methods(
    dataset_name: &str,
    methods: &[Method],
    samples: &[LabeledImage],
    policy: ForegroundPolicy,
) -> DatasetSummary {
    evaluate_methods_with(
        &SegmentEngine::default(),
        dataset_name,
        methods,
        samples,
        policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::{PascalVocLikeConfig, PascalVocLikeDataset};

    fn tiny_dataset(n: usize) -> Vec<LabeledImage> {
        PascalVocLikeDataset::new(PascalVocLikeConfig {
            len: n,
            width: 48,
            height: 36,
            seed: 77,
            ..PascalVocLikeConfig::default()
        })
        .iter()
        .collect()
    }

    #[test]
    fn method_constructors_and_names() {
        let methods = Method::table3_methods(1);
        assert_eq!(methods.len(), 4);
        assert_eq!(methods[0].name(), "K-means");
        assert_eq!(methods[1].name(), "OTSU");
        assert_eq!(methods[2].name(), "IQFT (RGB)");
        assert_eq!(methods[3].name(), "IQFT (Grayscale)");
        for m in &methods {
            let seg = m.build();
            assert!(!seg.name().is_empty());
        }
    }

    #[test]
    fn evaluation_produces_sane_scores() {
        let samples = tiny_dataset(3);
        let summary = evaluate_method(
            &Method::Otsu,
            &samples,
            ForegroundPolicy::LargestIsBackground,
        );
        assert_eq!(summary.scores.len(), 3);
        assert!(summary.average_miou >= 0.0 && summary.average_miou <= 1.0);
        assert!(summary.total_runtime_secs >= 0.0);
        assert!(summary.poor_fraction >= 0.0 && summary.poor_fraction <= 1.0);
        for s in &summary.scores {
            assert!((0.0..=1.0).contains(&s.miou), "{}: {}", s.id, s.miou);
            assert!((0.0..=1.0).contains(&s.iou_foreground));
        }
    }

    #[test]
    fn all_four_methods_run_on_the_same_samples() {
        let samples = tiny_dataset(2);
        let summary = evaluate_methods(
            "tiny",
            &Method::table3_methods(3),
            &samples,
            ForegroundPolicy::LargestIsBackground,
        );
        assert_eq!(summary.dataset, "tiny");
        assert_eq!(summary.methods.len(), 4);
        for m in &summary.methods {
            assert_eq!(m.scores.len(), 2);
        }
        let win = summary.win_fraction("IQFT (RGB)", "OTSU");
        assert!((0.0..=1.0).contains(&win));
    }

    #[test]
    fn perfect_segmenter_scores_one() {
        // A segmenter that returns the ground truth directly (via closure
        // capture) must score mIOU = 1 on every image.
        struct Oracle {
            truth: LabelMap,
        }
        impl Segmenter for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn segment_rgb(&self, _img: &RgbImage) -> LabelMap {
                self.truth
                    .map(|l| if l == imaging::VOID_LABEL { 0 } else { l })
            }
        }
        let samples = tiny_dataset(1);
        let oracle = Oracle {
            truth: samples[0].ground_truth.clone(),
        };
        let (_, miou, iou_fg, _) = score_single(
            &oracle,
            &samples[0].image,
            &samples[0].ground_truth,
            ForegroundPolicy::LargestIsBackground,
        );
        assert!((miou - 1.0).abs() < 1e-12);
        assert!((iou_fg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn win_fraction_is_zero_against_itself() {
        let samples = tiny_dataset(2);
        let summary = evaluate_methods(
            "tiny",
            &[Method::Otsu, Method::Otsu],
            &samples,
            ForegroundPolicy::LargestIsBackground,
        );
        assert_eq!(summary.win_fraction("OTSU", "OTSU"), 0.0);
    }
}
