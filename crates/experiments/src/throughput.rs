//! The `throughput` subcommand: batched segmentation of an image stream
//! through the `iqft-pipeline` service.
//!
//! This is the workload the ROADMAP's "heavy traffic" north star describes:
//! `--images N` synthetic frames are pushed through a [`SegmentPipeline`] in
//! batches of `--batch B`, label buffers are recycled between batches, and
//! per-batch throughput/latency plus arena allocation counters are reported.
//! Five classifier modes are exposed (the full
//! [`ClassifierKind::FLAG_HELP`] set):
//!
//! * `exact` — the direct [`IqftRgbSegmenter`] (statevector-equivalent math
//!   per pixel);
//! * `lut` — the lazy per-colour memoising `LutRgbSegmenter`;
//! * `table` — the eager `PhaseTable` fast path (three table lookups per
//!   pixel);
//! * `quant` — the fixed-point quantized table pinned to its portable
//!   scalar kernel;
//! * `simd` — the quantized table with runtime-dispatched `std::arch`
//!   kernels (the steady-state winner; both quantized modes stay
//!   bit-identical to `exact` via their built-in f64 oracle).
//!
//! Strategy selection goes through one dispatch point: the flags are parsed
//! into a [`SegmentPlan`] (`seg_engine::ClassifierKind` ×
//! `seg_engine::Tiling` × backend — the same single source of truth the
//! bench targets use) and the plan's classifier kind is materialised with
//! [`IqftClassifier`].  The `--tile WxH` knob switches the pipeline from
//! whole-image jobs to tile jobs, so oversized frames fan out across
//! workers instead of serialising onto one.
//!
//! Every run cross-checks the batched output against per-image serial
//! segmentation with the exact segmenter and reports the verification result
//! — byte-identity is an acceptance criterion, not an option (and it holds
//! for every classifier × tiling × backend combination by construction).

use crate::plans::{resolve_plan, ResolvedPlan};
use datasets::{synthetic_video, PascalVocLikeConfig, PascalVocLikeDataset, VideoConfig};
use imaging::{LabelMap, RgbImage, Segmenter};
use iqft_pipeline::{CacheConfig, LatencySummary, PipelineConfig, PipelineReport, SegmentPipeline};
use iqft_seg::{IqftClassifier, IqftRgbSegmenter};
use seg_engine::{ClassifierKind, SegmentEngine, SegmentPlan, Tiling};
use std::fmt::Write as _;

/// Configuration of a throughput run (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Number of images in the stream (`--images`).
    pub images: usize,
    /// Batch size (`--batch`).
    pub batch: usize,
    /// Square-ish image edge length in pixels (`--size`).
    pub image_size: usize,
    /// Dataset seed (`--seed`).
    pub seed: u64,
    /// Classifier mode (`--classifier`), one of
    /// [`ClassifierKind::FLAG_HELP`], parsed by
    /// [`ClassifierKind::from_flag`].
    pub classifier: String,
    /// Work decomposition: `off` for whole-image jobs or `WxH` for tile
    /// jobs (`--tile`), parsed by [`Tiling::from_flag`].
    pub tile: String,
    /// Whole-plan flag (`--plan`): a `classifier=…;tile=…;backend=…` spec,
    /// `auto` to probe the host ([`crate::plans`]), or empty to compose the
    /// plan from `classifier`/`tile` and the engine's backend.  Non-empty
    /// values override the per-axis flags.
    pub plan: String,
    /// Result-cache budget in MiB (`--cache-mb`, 0 = off).  With a cache
    /// the stream runs through the per-request path
    /// ([`SegmentPipeline::run_stream_requests`]) so repeated images are
    /// answered from the cache, the way a serving deployment sees them.
    pub cache_mb: usize,
    /// Skip the byte-identity cross-check (`--no-verify`); the default runs it.
    pub verify: bool,
    /// Stream synthetic video instead of independent images (`--video`):
    /// consecutive frames share most of their pixels, and the stream runs
    /// through the per-tile delta path
    /// ([`SegmentPipeline::run_stream_deltas`]) so unchanged tiles are
    /// stitched from the cache instead of re-classified.
    pub video: bool,
    /// Fraction of each frame's blocks mutated per frame in `--video` mode
    /// (`--change-rate`, 0.0–1.0).
    pub change_rate: f64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        Self {
            images: 64,
            batch: 16,
            image_size: 128,
            seed: 42,
            classifier: ClassifierKind::default().flag().to_string(),
            tile: Tiling::default().flag(),
            plan: String::new(),
            cache_mb: 0,
            verify: true,
            video: false,
            change_rate: 0.1,
        }
    }
}

impl ThroughputConfig {
    /// Parses the config's strategy flags into a [`SegmentPlan`] executing
    /// on `engine`'s backend.  Errors on an unknown classifier or a
    /// malformed tile shape.  With a non-empty `plan` flag this may run a
    /// calibration sweep (`--plan auto`); use [`Self::resolved_plan`] when
    /// the calibration evidence matters.
    pub fn plan(&self, engine: &SegmentEngine) -> Result<SegmentPlan, String> {
        self.resolved_plan(engine).map(|resolved| resolved.plan)
    }

    /// Resolves the `--plan` flag (falling back to the per-axis flags) and
    /// keeps the calibration report when the plan was probed.
    pub fn resolved_plan(&self, engine: &SegmentEngine) -> Result<ResolvedPlan, String> {
        resolve_plan(&self.plan, || {
            Ok(SegmentPlan::new(
                ClassifierKind::from_flag(&self.classifier)?,
                Tiling::from_flag(&self.tile)?,
                engine.backend(),
            ))
        })
    }
}

/// Generates the synthetic image stream for a throughput run (the VOC-like
/// generator's images, deterministic in `seed`).
pub fn throughput_images(config: &ThroughputConfig) -> Vec<RgbImage> {
    if config.video {
        return synthetic_video(&VideoConfig {
            frames: config.images,
            width: config.image_size,
            height: config.image_size * 3 / 4,
            change_rate: config.change_rate,
            block: 0,
            seed: config.seed,
        });
    }
    PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: config.images,
        width: config.image_size,
        height: config.image_size * 3 / 4,
        seed: config.seed,
        ..PascalVocLikeConfig::default()
    })
    .iter()
    .map(|sample| sample.image)
    .collect()
}

/// The serving-path shape of one run: how frames decompose into work, how
/// big the result cache is (0 = none), and whether the stream takes the
/// per-tile delta path.
struct StreamShape {
    tiling: Tiling,
    cache_mb: usize,
    delta: bool,
}

fn run_pipeline(
    engine: &SegmentEngine,
    classifier: IqftClassifier,
    images: &[RgbImage],
    batch: usize,
    shape: StreamShape,
    cache_salt: &str,
) -> (Vec<LabelMap>, PipelineReport, u64) {
    let StreamShape {
        tiling,
        cache_mb,
        delta,
    } = shape;
    let pipeline = SegmentPipeline::new(*engine, classifier)
        .with_config(PipelineConfig {
            tiling,
            ..PipelineConfig::default()
        })
        .with_cache(CacheConfig::with_capacity_mb(cache_mb), cache_salt);
    let mut outputs: Vec<Option<LabelMap>> = Vec::new();
    outputs.resize_with(images.len(), || None);
    let sink = |idx: usize, labels: LabelMap| {
        // Keep a copy for verification, recycle the storage for the next
        // batch.  (A real service would ship `labels` downstream instead.)
        outputs[idx] = Some(labels.clone());
        pipeline.recycle(labels);
    };
    let report = if delta {
        // Video streams run the per-tile delta path: unchanged tiles are
        // stitched from the cache, changed tiles are re-classified.
        let mut sink = sink;
        pipeline.run_stream_deltas(images, batch, |idx, labels, _hit, _recomputed| {
            sink(idx, labels)
        })
    } else if cache_mb > 0 {
        // Cached streams run the per-request serving path so repeated
        // images are answered from the cache.
        let mut sink = sink;
        pipeline.run_stream_requests(images, batch, |idx, labels, _hit| sink(idx, labels))
    } else {
        pipeline.run_stream(images, batch, sink)
    };
    let outputs = outputs
        .into_iter()
        .map(|slot| slot.expect("pipeline visited every image"))
        .collect();
    let quant_fallbacks = pipeline.classifier().quant_fallback_pixels();
    (outputs, report, quant_fallbacks)
}

/// Runs the configured stream and returns `(labels, report, quant
/// fallbacks)` — the last is the number of pixels a quantized classifier
/// routed through its f64 exactness oracle (0 for non-quantized kinds).
/// The whole strategy — classifier kind, tiling, backend — is resolved here
/// through a single [`SegmentPlan`]; errors on an unknown classifier or
/// tile flag.
pub fn throughput_run(
    engine: &SegmentEngine,
    config: &ThroughputConfig,
    images: &[RgbImage],
) -> Result<(Vec<LabelMap>, PipelineReport, u64), String> {
    let plan = config.plan(engine)?;
    Ok(throughput_run_with_plan(config, images, &plan))
}

/// [`throughput_run`] with the plan already resolved — the path
/// [`throughput_report`] takes so a `--plan auto` calibration sweep runs
/// once, not once per stage.
pub fn throughput_run_with_plan(
    config: &ThroughputConfig,
    images: &[RgbImage],
    plan: &SegmentPlan,
) -> (Vec<LabelMap>, PipelineReport, u64) {
    run_pipeline(
        &plan.engine(),
        IqftClassifier::for_plan(plan),
        images,
        config.batch,
        StreamShape {
            tiling: plan.tiling(),
            cache_mb: config.cache_mb,
            delta: config.video,
        },
        &plan.to_spec(),
    )
}

/// Runs the whole subcommand and renders the human-readable report.
pub fn throughput_report(engine: &SegmentEngine, config: &ThroughputConfig) -> String {
    let images = throughput_images(config);
    // Resolve the plan once up front: a `--plan auto` calibration sweep
    // should probe the host a single time, and its evidence belongs in the
    // report.
    let resolved = match config.resolved_plan(engine) {
        Ok(resolved) => resolved,
        Err(message) => return message,
    };
    let (labels, report, quant_fallbacks) =
        throughput_run_with_plan(config, &images, &resolved.plan);
    let quantized = resolved.plan.classifier().is_quantized();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Throughput: {} images ({}x{}), batch {}, classifier '{}', tile '{}', {} workers, \
         cache {}",
        config.images,
        config.image_size,
        config.image_size * 3 / 4,
        config.batch,
        config.classifier,
        config.tile,
        report.workers,
        if config.cache_mb > 0 {
            format!("{}MiB", config.cache_mb)
        } else {
            "off".to_string()
        },
    );
    let _ = writeln!(out, "  plan: [{}]", resolved.plan);
    if let Some(calibration) = &resolved.calibration {
        let _ = writeln!(out, "  calibration: {}", calibration.summary());
    }
    if config.video {
        let _ = writeln!(
            out,
            "  video: delta path, change rate {:.0}% of blocks per frame",
            config.change_rate * 100.0,
        );
    }
    for b in &report.batches {
        let _ = writeln!(
            out,
            "  batch {:>3}: {:>4} img  {:>8.3} Mpx  {:>9.2} ms  {:>8.1} img/s  {:>7.2} Mpx/s  {:>7.3} ms/img",
            b.batch,
            b.images,
            b.pixels as f64 / 1e6,
            b.elapsed_secs * 1e3,
            b.images_per_sec(),
            b.mpixels_per_sec(),
            b.mean_latency_ms(),
        );
    }
    let _ = writeln!(
        out,
        "  total: {} images, {:.3} Mpx in {:.2} ms -> {:.1} img/s, {:.2} Mpx/s (steady-state {:.1} img/s)",
        report.images(),
        report.pixels() as f64 / 1e6,
        report.elapsed_secs() * 1e3,
        report.images_per_sec(),
        report.mpixels_per_sec(),
        report.steady_state_images_per_sec(),
    );
    let _ = writeln!(
        out,
        "  arena: {} allocations, {} reuses ({} buffers pooled at exit)",
        report.arena_allocations, report.arena_reuses, report.arena_pooled,
    );
    if report.latency.count > 0 {
        let lat = report.latency;
        let _ = writeln!(
            out,
            "  latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  p999 {:.3} ms  max {:.3} ms \
             ({} ops)",
            LatencySummary::ms(lat.p50_ns),
            LatencySummary::ms(lat.p90_ns),
            LatencySummary::ms(lat.p99_ns),
            LatencySummary::ms(lat.p999_ns),
            LatencySummary::ms(lat.max_ns),
            lat.count,
        );
    }
    if config.cache_mb > 0 {
        let _ = writeln!(
            out,
            "  cache: {} hits, {} misses, {} evictions ({} entries, {:.1} MiB at exit)",
            report.cache_hits,
            report.cache_misses,
            report.cache_evictions,
            report.cache_entries,
            report.cache_bytes as f64 / (1 << 20) as f64,
        );
    }
    let delta_total = report.delta_tiles_hit + report.delta_tiles_recomputed;
    if delta_total > 0 {
        let _ = writeln!(
            out,
            "  delta: {} tiles hit, {} recomputed ({:.1}% tile hit ratio)",
            report.delta_tiles_hit,
            report.delta_tiles_recomputed,
            report.delta_tile_hit_ratio() * 100.0,
        );
    }
    if quantized {
        let _ = writeln!(
            out,
            "  quant: {} of {} pixels resolved by the f64 exactness oracle ({:.4}%)",
            quant_fallbacks,
            report.pixels(),
            if report.pixels() > 0 {
                quant_fallbacks as f64 * 100.0 / report.pixels() as f64
            } else {
                0.0
            },
        );
    }

    if config.verify {
        let serial = SegmentEngine::serial();
        let reference = IqftRgbSegmenter::paper_default().with_engine(serial);
        let mismatches = images
            .iter()
            .zip(labels.iter())
            .filter(|(img, out)| &reference.segment_rgb(img) != *out)
            .count();
        if mismatches == 0 {
            let _ = writeln!(
                out,
                "  verify: batched output byte-identical to per-image serial segmentation \
                 ({} images checked)",
                images.len()
            );
        } else {
            let _ = writeln!(
                out,
                "  verify: FAILED — {mismatches} of {} images differ from serial reference",
                images.len()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(classifier: &str) -> ThroughputConfig {
        ThroughputConfig {
            images: 6,
            batch: 2,
            image_size: 40,
            seed: 7,
            classifier: classifier.to_string(),
            tile: "off".to_string(),
            plan: String::new(),
            cache_mb: 0,
            verify: true,
            video: false,
            change_rate: 0.1,
        }
    }

    #[test]
    fn video_streams_run_the_delta_path_and_stay_byte_identical() {
        let engine = SegmentEngine::with_threads(2);
        let mut config = small_config("table");
        config.video = true;
        config.change_rate = 0.25;
        config.cache_mb = 8;
        config.tile = "32x32".to_string();
        config.images = 5;
        config.image_size = 128; // 128x96 frames: 4 mutation blocks, 12 tiles
        let images = throughput_images(&config);
        assert_eq!(images.len(), 5);
        let reference: Vec<LabelMap> = images
            .iter()
            .map(|img| {
                IqftRgbSegmenter::paper_default()
                    .with_engine(SegmentEngine::serial())
                    .segment_rgb(img)
            })
            .collect();
        let (labels, report, _) = throughput_run(&engine, &config, &images).unwrap();
        assert_eq!(labels, reference, "stitched deltas match serial reference");
        assert!(report.delta_tiles_hit > 0, "{report:?}");
        assert!(report.delta_tiles_recomputed > 0, "{report:?}");
        let rendered = throughput_report(&engine, &config);
        assert!(rendered.contains("video: delta path"), "{rendered}");
        assert!(rendered.contains("tile hit ratio"), "{rendered}");
        assert!(rendered.contains("byte-identical"), "{rendered}");
    }

    #[test]
    fn all_classifier_modes_and_tilings_agree_with_serial_reference() {
        let engine = SegmentEngine::with_threads(2);
        let config = small_config("exact");
        let images = throughput_images(&config);
        let reference: Vec<LabelMap> = images
            .iter()
            .map(|img| {
                IqftRgbSegmenter::paper_default()
                    .with_engine(SegmentEngine::serial())
                    .segment_rgb(img)
            })
            .collect();
        for kind in ClassifierKind::ALL {
            let mode = kind.flag();
            for tile in ["off", "16x16", "13x7"] {
                let mut config = small_config(mode);
                config.tile = tile.to_string();
                let (labels, report, fallbacks) =
                    throughput_run(&engine, &config, &images).unwrap();
                assert_eq!(labels, reference, "mode {mode} tile {tile}");
                assert_eq!(report.images(), 6);
                assert_eq!(report.batches.len(), 3);
                if !kind.is_quantized() {
                    assert_eq!(fallbacks, 0, "mode {mode} has no oracle path");
                }
            }
        }
    }

    #[test]
    fn cached_streams_agree_with_serial_reference_and_report_cache_counters() {
        let engine = SegmentEngine::with_threads(2);
        let mut config = small_config("table");
        config.cache_mb = 4;
        let images = throughput_images(&config);
        let reference: Vec<LabelMap> = images
            .iter()
            .map(|img| {
                IqftRgbSegmenter::paper_default()
                    .with_engine(SegmentEngine::serial())
                    .segment_rgb(img)
            })
            .collect();
        let (labels, report, _) = throughput_run(&engine, &config, &images).unwrap();
        assert_eq!(labels, reference);
        // Distinct images: every request misses and is stored.
        assert_eq!(report.cache_misses, 6, "{report:?}");
        assert_eq!(report.cache_hits, 0, "{report:?}");
        assert_eq!(report.cache_entries, 6, "{report:?}");
        let rendered = throughput_report(&engine, &config);
        assert!(rendered.contains("cache 4MiB"), "{rendered}");
        assert!(rendered.contains("cache:"), "{rendered}");
        assert!(rendered.contains("byte-identical"), "{rendered}");
    }

    #[test]
    fn unknown_classifier_and_tile_flags_are_rejected() {
        let engine = SegmentEngine::serial();
        let config = small_config("gpu");
        let images = throughput_images(&config);
        assert!(throughput_run(&engine, &config, &images).is_err());
        assert!(throughput_report(&engine, &config).contains("unknown classifier"));
        let mut config = small_config("table");
        config.tile = "64".to_string();
        assert!(throughput_run(&engine, &config, &images).is_err());
        assert!(throughput_report(&engine, &config).contains("invalid tile shape"));
    }

    #[test]
    fn config_plan_resolves_the_three_axes() {
        let engine = SegmentEngine::with_threads(3);
        let mut config = small_config("lut");
        config.tile = "32x16".to_string();
        let plan = config.plan(&engine).unwrap();
        assert_eq!(plan.classifier(), ClassifierKind::Lut);
        assert_eq!(
            plan.tiling(),
            Tiling::Tiles {
                width: 32,
                height: 16
            }
        );
        assert_eq!(plan.backend(), engine.backend());
        assert_eq!(
            ThroughputConfig::default().plan(&engine).unwrap().tiling(),
            Tiling::Whole,
            "tiling defaults to off"
        );
    }

    #[test]
    fn plan_flag_overrides_the_axis_flags_and_stays_byte_identical() {
        let engine = SegmentEngine::with_threads(2);
        let mut config = small_config("table");
        // The per-axis flags say table/off; the plan flag wins.
        config.plan = "classifier=simd;tile=16x16;backend=serial".to_string();
        let plan = config.plan(&engine).unwrap();
        assert_eq!(plan.classifier(), ClassifierKind::Simd);
        assert_eq!(plan.backend(), SegmentEngine::serial().backend());
        let report = throughput_report(&engine, &config);
        assert!(
            report.contains("plan: [classifier=simd;tile=16x16;backend=serial]"),
            "{report}"
        );
        assert!(report.contains("byte-identical"), "{report}");
        // A malformed plan fails loudly instead of falling back.
        config.plan = "classifier=warp".to_string();
        assert!(throughput_report(&engine, &config).contains("unknown classifier"));
    }

    #[test]
    fn report_contains_verification_and_batch_lines() {
        let engine = SegmentEngine::with_threads(2);
        let report = throughput_report(&engine, &small_config("table"));
        assert!(report.contains("batch   0"), "{report}");
        assert!(report.contains("byte-identical"), "{report}");
        assert!(report.contains("arena"), "{report}");
        assert!(report.contains("latency: p50"), "{report}");
        assert!(!report.contains("quant:"), "{report}");
        // --no-verify drops the verification pass.
        let mut config = small_config("table");
        config.verify = false;
        let silent = throughput_report(&engine, &config);
        assert!(!silent.contains("verify:"), "{silent}");
    }

    #[test]
    fn quantized_report_surfaces_the_oracle_fallback_line() {
        let engine = SegmentEngine::with_threads(2);
        for mode in ["quant", "simd"] {
            let report = throughput_report(&engine, &small_config(mode));
            assert!(report.contains("quant:"), "{report}");
            assert!(report.contains("exactness oracle"), "{report}");
            assert!(report.contains("byte-identical"), "{report}");
        }
    }

    #[test]
    fn image_stream_is_deterministic_in_the_seed() {
        let config = small_config("table");
        assert_eq!(throughput_images(&config), throughput_images(&config));
        let mut other = config.clone();
        other.seed = 8;
        assert_ne!(throughput_images(&config), throughput_images(&other));
    }
}
