//! The `serve` and `loadgen` subcommands: the network face of the harness.
//!
//! `serve` boots a long-lived [`iqft_serve::Server`] around one warm
//! [`seg_engine::SegmentPlan`] and blocks until a Shutdown frame drains it;
//! `loadgen` plays the millions-of-users side: `--clients C` concurrent
//! connections stream `--images N` synthetic frames through the daemon,
//! cross-check every reply byte-for-byte against a local serial
//! [`SegmentEngine`] pass (default on, like the `throughput` subcommand),
//! and report client-side throughput plus the server's own statistics
//! snapshot.  With `--shutdown`, loadgen finishes by asking the server to
//! drain and stop — which is exactly what the CI `service-smoke` job does.

use crate::throughput::{throughput_images, ThroughputConfig};
use imaging::{LabelMap, Segmenter};
use iqft_seg::IqftRgbSegmenter;
use iqft_serve::{Client, Server, ServerConfig};
use seg_engine::{SegmentEngine, SegmentPlan};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Configuration of the `serve` subcommand (mirrors its CLI flags).
#[derive(Debug, Clone)]
pub struct ServeCliConfig {
    /// Listen address (`--addr`), e.g. `127.0.0.1:7870`.
    pub addr: String,
    /// Classifier flag (`--classifier exact|lut|table`).
    pub classifier: String,
    /// Tiling flag (`--tile off|WxH`).
    pub tile: String,
    /// Backend flag (`--backend serial|threads|rayon`).
    pub backend: String,
    /// Thread count for the threads backend (`--threads`).
    pub threads: usize,
    /// Cap on concurrently-executing segment requests (`--workers`,
    /// 0 = the plan's effective thread count).
    pub workers: usize,
}

impl Default for ServeCliConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7870".to_string(),
            classifier: "table".to_string(),
            tile: "off".to_string(),
            backend: "threads".to_string(),
            threads: 0,
            workers: 0,
        }
    }
}

/// Boots the daemon described by `config` and blocks until it has drained
/// and stopped (a client sent Shutdown).  Returns a one-line exit summary.
///
/// The boot line is printed to stdout *before* blocking so a supervising
/// script (the CI smoke job) can tell the server is up.
pub fn serve_command(config: &ServeCliConfig) -> Result<String, String> {
    let plan = SegmentPlan::from_flags(
        &config.classifier,
        &config.tile,
        &config.backend,
        config.threads,
    )?;
    let server = Server::bind(
        config.addr.as_str(),
        ServerConfig {
            plan,
            max_inflight: config.workers,
        },
    )
    .map_err(|e| format!("failed to bind {}: {e}", config.addr))?;
    println!(
        "iqft-serve listening on {} ({}; max_inflight={})",
        server.local_addr(),
        plan.describe(),
        server.max_inflight(),
    );
    let (total, pixels) = server.join_with_counters();
    Ok(format!(
        "iqft-serve drained and stopped after {total} requests ({:.3} Mpx segmented)",
        pixels as f64 / 1e6
    ))
}

/// Configuration of the `loadgen` subcommand (mirrors its CLI flags).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`--addr`).
    pub addr: String,
    /// Concurrent client connections (`--clients`).
    pub clients: usize,
    /// Total images to stream across all clients (`--images`).
    pub images: usize,
    /// Square-ish image edge length (`--size`).
    pub image_size: usize,
    /// Dataset seed (`--seed`).
    pub seed: u64,
    /// Cross-check every reply against a local serial pass (`--no-verify`
    /// turns this off; the default runs it).
    pub verify: bool,
    /// Send a Shutdown frame once traffic (and stats) are done
    /// (`--shutdown`).
    pub shutdown: bool,
    /// How long the initial connection keeps retrying (milliseconds), so
    /// loadgen can be launched concurrently with a booting server.  No CLI
    /// flag; tests shrink it.
    pub connect_deadline_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7870".to_string(),
            clients: 4,
            images: 32,
            image_size: 160,
            seed: 42,
            verify: true,
            shutdown: false,
            connect_deadline_ms: 15_000,
        }
    }
}

const CONNECT_RETRY: Duration = Duration::from_millis(250);

/// Connects with retries until `deadline_ms` elapses, so loadgen can be
/// launched concurrently with a still-booting server (as the CI smoke job
/// does).
fn connect_with_retry(addr: &str, deadline_ms: u64) -> Result<Client, String> {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(CONNECT_RETRY);
            }
            Err(e) => return Err(format!("could not connect to {addr}: {e}")),
        }
    }
}

/// Per-client outcome of a loadgen run.
#[derive(Debug, Default, Clone)]
struct ClientOutcome {
    requests: usize,
    pixels: u64,
    mismatches: usize,
    elapsed_secs: f64,
}

/// Drives the configured traffic and renders the report.
///
/// Errors (rather than reporting) on connection failure, any protocol/server
/// error, or — when verification is on — any reply that is not
/// byte-identical to the local serial reference, so a supervising script
/// fails loudly.
pub fn loadgen_report(config: &LoadgenConfig) -> Result<String, String> {
    let clients = config.clients.max(1);
    let images = throughput_images(&ThroughputConfig {
        images: config.images,
        image_size: config.image_size,
        seed: config.seed,
        ..ThroughputConfig::default()
    });
    // The reference pass runs locally on the serial engine: whatever
    // classifier/tiling/backend the *server* was booted with, its replies
    // must be byte-identical to this by construction.
    let reference: Vec<LabelMap> = if config.verify {
        let serial = IqftRgbSegmenter::paper_default().with_engine(SegmentEngine::serial());
        images.iter().map(|img| serial.segment_rgb(img)).collect()
    } else {
        Vec::new()
    };

    // Probe once with retries so a freshly-booted server has time to bind.
    let mut probe = connect_with_retry(&config.addr, config.connect_deadline_ms)?;
    probe.ping().map_err(|e| format!("ping failed: {e}"))?;

    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let images = &images;
                let reference = &reference;
                let addr = config.addr.as_str();
                let verify = config.verify;
                scope.spawn(move || -> Result<ClientOutcome, String> {
                    let mut client = Client::connect(addr)
                        .map_err(|e| format!("client {client_idx}: connect failed: {e}"))?;
                    let mut outcome = ClientOutcome::default();
                    let started = Instant::now();
                    for (idx, img) in images.iter().enumerate() {
                        if idx % clients != client_idx {
                            continue;
                        }
                        let labels = client.segment(img).map_err(|e| {
                            format!("client {client_idx}: segment of image {idx} failed: {e}")
                        })?;
                        outcome.requests += 1;
                        outcome.pixels += labels.len() as u64;
                        if verify && labels != reference[idx] {
                            outcome.mismatches += 1;
                        }
                    }
                    outcome.elapsed_secs = started.elapsed().as_secs_f64();
                    Ok(outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Loadgen: {} images ({}x{}) across {} clients against {}",
        config.images,
        config.image_size,
        config.image_size * 3 / 4,
        clients,
        config.addr,
    );
    let mut total = ClientOutcome::default();
    for (idx, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().map_err(|e| e.clone())?;
        let _ = writeln!(
            out,
            "  client {idx}: {:>4} requests  {:>8.3} Mpx  {:>8.2} ms  {:>7.2} Mpx/s",
            outcome.requests,
            outcome.pixels as f64 / 1e6,
            outcome.elapsed_secs * 1e3,
            outcome.pixels as f64 / 1e6 / outcome.elapsed_secs.max(1e-9),
        );
        total.requests += outcome.requests;
        total.pixels += outcome.pixels;
        total.mismatches += outcome.mismatches;
    }
    let _ = writeln!(
        out,
        "  total: {} requests, {:.3} Mpx in {:.2} ms -> {:.2} Mpx/s over the wire",
        total.requests,
        total.pixels as f64 / 1e6,
        wall_secs * 1e3,
        total.pixels as f64 / 1e6 / wall_secs.max(1e-9),
    );
    if config.verify {
        if total.mismatches > 0 {
            return Err(format!(
                "verify: FAILED — {} of {} replies differ from the local serial reference",
                total.mismatches, total.requests
            ));
        }
        let _ = writeln!(
            out,
            "  verify: all {} replies byte-identical to the local serial reference",
            total.requests
        );
    }

    let stats = probe
        .stats()
        .map_err(|e| format!("stats request failed: {e}"))?;
    let _ = writeln!(
        out,
        "  server: plan [{}], {} conns ({} open), {} requests ({} segment), {:.3} Mpx, \
         {:.2} Mpx/s since boot",
        stats.plan,
        stats.connections_total,
        stats.connections_open,
        stats.requests_total,
        stats.segment_requests,
        stats.pixels_total as f64 / 1e6,
        stats.mpix_per_sec,
    );
    let _ = writeln!(
        out,
        "  server arena: {} allocations, {} reuses ({} pooled); max_inflight {}; {} protocol errors",
        stats.arena_allocations,
        stats.arena_reuses,
        stats.arena_pooled,
        stats.max_inflight,
        stats.protocol_errors,
    );

    if config.shutdown {
        probe
            .shutdown()
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        let _ = writeln!(out, "  shutdown: acknowledged, server is draining");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_engine::{ClassifierKind, Tiling};

    fn boot(plan: SegmentPlan) -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                plan,
                max_inflight: 0,
            },
        )
        .expect("ephemeral bind")
    }

    fn small_loadgen(addr: String) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            clients: 3,
            images: 9,
            image_size: 40,
            seed: 7,
            verify: true,
            shutdown: true,
            connect_deadline_ms: 2_000,
        }
    }

    #[test]
    fn loadgen_drives_verifies_and_shuts_down_a_real_server() {
        let plan = SegmentPlan::default()
            .with_classifier(ClassifierKind::Table)
            .with_tiling(Tiling::Tiles {
                width: 16,
                height: 16,
            });
        let server = boot(plan);
        let report = loadgen_report(&small_loadgen(server.local_addr().to_string())).unwrap();
        assert!(
            report.contains("verify: all 9 replies byte-identical"),
            "{report}"
        );
        assert!(report.contains("client 0"), "{report}");
        assert!(report.contains("shutdown: acknowledged"), "{report}");
        assert!(report.contains(&plan.to_spec()), "{report}");
        // The Shutdown frame drains the server; join must not hang.
        server.join();
    }

    #[test]
    fn loadgen_fails_loudly_when_no_server_listens() {
        let mut config = small_loadgen("127.0.0.1:1".to_string());
        config.shutdown = false;
        config.connect_deadline_ms = 100;
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("could not connect"), "{err}");
    }

    #[test]
    fn serve_command_rejects_bad_flags() {
        let config = ServeCliConfig {
            classifier: "gpu".to_string(),
            ..ServeCliConfig::default()
        };
        assert!(serve_command(&config).is_err());
        let config = ServeCliConfig {
            addr: "256.256.256.256:99999".to_string(),
            ..ServeCliConfig::default()
        };
        assert!(serve_command(&config).unwrap_err().contains("bind"));
    }
}
