//! The `serve` and `loadgen` subcommands: the network face of the harness.
//!
//! `serve` boots a long-lived [`iqft_serve::Server`] around one warm
//! [`seg_engine::SegmentPlan`] and blocks until a Shutdown frame drains it;
//! `loadgen` plays the millions-of-users side: `--clients C` concurrent
//! connections stream `--images N` synthetic frames through the daemon,
//! cross-check every reply byte-for-byte against a local serial
//! [`SegmentEngine`] pass (default on, like the `throughput` subcommand),
//! and report client-side throughput plus the server's own statistics
//! snapshot.  With `--shutdown`, loadgen finishes by asking the server to
//! drain and stop — which is exactly what the CI `service-smoke` job does.

use crate::plans::{resolve_plan, ResolvedPlan};
use crate::throughput::{throughput_images, ThroughputConfig};
use imaging::{LabelMap, Segmenter};
use iqft_pipeline::CacheConfig;
use iqft_seg::IqftRgbSegmenter;
use iqft_serve::{
    protocol, Client, ClientConfig, FleetClient, SegmentOutcome, ServeMode, Server, ServerConfig,
};
use seg_engine::{ClassifierKind, SegmentEngine, SegmentPlan, Tiling};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Configuration of the `serve` subcommand (mirrors its CLI flags).
#[derive(Debug, Clone)]
pub struct ServeCliConfig {
    /// Listen address (`--addr`), e.g. `127.0.0.1:7870`.
    pub addr: String,
    /// Whole-plan flag (`--plan`): a `classifier=…;tile=…;backend=…` spec,
    /// `auto` to probe the host at boot ([`crate::plans`]), or empty to
    /// compose the plan from the per-axis flags below.
    pub plan: String,
    /// Classifier flag (`--classifier`), one of
    /// [`seg_engine::ClassifierKind::FLAG_HELP`].
    pub classifier: String,
    /// Tiling flag (`--tile off|WxH`).
    pub tile: String,
    /// Backend flag (`--backend serial|threads|rayon`).
    pub backend: String,
    /// Thread count for the threads backend (`--threads`).
    pub threads: usize,
    /// Cap on concurrently-executing segment requests (`--workers`,
    /// 0 = the plan's effective thread count).
    pub workers: usize,
    /// Admission-control queue bound (`--max-queue`, 0 = unbounded): once
    /// every worker is busy and this many segment requests are already
    /// waiting, further ones get an immediate typed Busy reply.
    pub max_queue: usize,
    /// Serving core (`--serve-mode threads|evented`).  `evented` (the
    /// default) multiplexes every connection over a small reactor set;
    /// `threads` is the classic thread-per-connection core.
    pub serve_mode: String,
    /// Byte budget of the content-addressed result cache in MiB
    /// (`--cache-mb`, 0 = caching disabled).
    pub cache_mb: usize,
    /// When set, the bound address is written to this file once the server
    /// is listening (`--addr-file`) — with `--addr 127.0.0.1:0` this is how
    /// a supervising script learns the ephemeral port.
    pub addr_file: Option<PathBuf>,
    /// Result-cache persistence path (`--cache-persist`): warm-load a
    /// snapshot from here on boot (salt mismatch ⟹ clean cold start) and
    /// write the resident entries back on a drain-then-stop shutdown.
    pub cache_persist: Option<PathBuf>,
}

impl Default for ServeCliConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7870".to_string(),
            plan: String::new(),
            classifier: "table".to_string(),
            tile: "off".to_string(),
            backend: "threads".to_string(),
            threads: 0,
            workers: 0,
            max_queue: 0,
            serve_mode: ServeMode::default().as_str().to_string(),
            cache_mb: 0,
            addr_file: None,
            cache_persist: None,
        }
    }
}

/// Boots the daemon described by `config` and blocks until it has drained
/// and stopped (a client sent Shutdown).  Returns a one-line exit summary.
///
/// The boot line is printed to stdout *before* blocking so a supervising
/// script (the CI smoke job) can tell the server is up.
pub fn serve_command(config: &ServeCliConfig) -> Result<String, String> {
    let resolved = resolve_plan(&config.plan, || {
        let engine = SegmentEngine::from_flags(&config.backend, config.threads)?;
        Ok(SegmentPlan::new(
            ClassifierKind::from_flag(&config.classifier)?,
            Tiling::from_flag(&config.tile)?,
            engine.backend(),
        ))
    })?;
    let plan = resolved.plan;
    if let Some(report) = &resolved.calibration {
        println!("iqft-serve calibrated [{plan}]: {}", report.summary());
    }
    let mode: ServeMode = config.serve_mode.parse()?;
    // A thousand-connection sweep needs more descriptors than the common
    // 1024 soft default; raise it best-effort before binding.
    #[cfg(unix)]
    iqft_serve::poll::raise_nofile_limit(8192);
    let mut server_config = ServerConfig::new(plan)
        .with_max_inflight(config.workers)
        .with_max_queue(config.max_queue)
        .with_cache(CacheConfig::with_capacity_mb(config.cache_mb))
        .with_mode(mode)
        .with_calibration(resolved.calibration_summary());
    if let Some(path) = &config.cache_persist {
        server_config = server_config.with_cache_persist(path);
    }
    let server = Server::bind(config.addr.as_str(), server_config)
        .map_err(|e| format!("failed to bind {}: {e}", config.addr))?;
    if let Some(path) = &config.addr_file {
        // Written only after the bind succeeded, so a supervising script can
        // treat the file's existence as "the port is known and listening".
        std::fs::write(path, server.local_addr().to_string())
            .map_err(|e| format!("failed to write {}: {e}", path.display()))?;
    }
    println!(
        "iqft-serve listening on {} ({}; mode={}; max_inflight={}; max_queue={}; cache={})",
        server.local_addr(),
        plan.describe(),
        server.mode().as_str(),
        server.max_inflight(),
        if config.max_queue > 0 {
            config.max_queue.to_string()
        } else {
            "unbounded".to_string()
        },
        if config.cache_mb > 0 {
            format!("{}MiB", config.cache_mb)
        } else {
            "off".to_string()
        },
    );
    if config.cache_persist.is_some() {
        let (entries, bytes) = server.cache_warm_loaded();
        println!(
            "iqft-serve cache persistence on: warm-loaded {entries} entries ({:.1} MiB)",
            bytes as f64 / (1 << 20) as f64
        );
    }
    let (total, pixels) = server.join_with_counters();
    Ok(format!(
        "iqft-serve drained and stopped after {total} requests ({:.3} Mpx segmented)",
        pixels as f64 / 1e6
    ))
}

/// The `ping` subcommand: probes a server with bounded retries — the
/// readiness check a supervising script (the CI smoke job) runs between
/// booting the daemon and launching traffic at it.
pub fn ping_command(addr: &str, retries: usize, interval_ms: u64) -> Result<String, String> {
    let attempts = retries.max(1);
    let mut last = String::from("never attempted");
    for attempt in 1..=attempts {
        match Client::open(&ClientConfig::new(addr)) {
            Ok(mut client) => match client.ping() {
                Ok(()) => {
                    return Ok(format!("pong from {addr} (attempt {attempt}/{attempts})"));
                }
                Err(e) => last = e.to_string(),
            },
            Err(e) => last = e.to_string(),
        }
        if attempt < attempts {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    }
    Err(format!(
        "no pong from {addr} after {attempts} attempts: {last}"
    ))
}

/// Configuration of the `loadgen` subcommand (mirrors its CLI flags).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`--addr`).
    pub addr: String,
    /// Plan for the *local* verification reference (`--plan`): empty keeps
    /// the exact serial pass, `auto` calibrates the reference backend, and
    /// an explicit spec pins it.  Byte-identity makes every choice produce
    /// the same labels; the knob only changes how fast the reference side
    /// keeps up with a big run.
    pub plan: String,
    /// Concurrent client connections (`--clients`).
    pub clients: usize,
    /// Total images to stream across all clients (`--images`).
    pub images: usize,
    /// Square-ish image edge length (`--size`).
    pub image_size: usize,
    /// Dataset seed (`--seed`).
    pub seed: u64,
    /// Cross-check every reply against a local serial pass (`--no-verify`
    /// turns this off; the default runs it).
    pub verify: bool,
    /// Send a Shutdown frame once traffic (and stats) are done
    /// (`--shutdown`).
    pub shutdown: bool,
    /// Fraction of requests that repeat an earlier image
    /// (`--repeat-ratio`, 0.0–1.0) — Zipf-ish, head-biased repeated
    /// traffic, the shape a warm result cache is built for.
    pub repeat_ratio: f64,
    /// Requests each client keeps in flight on its connection
    /// (`--pipeline`, clamped to `1..=MAX_PIPELINE_DEPTH`).
    pub pipeline_depth: usize,
    /// Fail loudly unless the server's final stats snapshot reports at
    /// least one cache hit (`--expect-cache-hits`) — the CI cache leg's
    /// assertion.  In `--video` mode the assertion counts delta *tile* hits
    /// instead of whole-image hits.
    pub expect_cache_hits: bool,
    /// Stream synthetic video instead of independent images (`--video`):
    /// each client plays its own deterministic frame stream through the
    /// per-tile delta op (`SegmentDelta`), so consecutive frames share most
    /// of their tiles and the server's delta cache can prove itself.
    pub video: bool,
    /// Fraction of each frame's blocks mutated per frame in `--video` mode
    /// (`--change-rate`, 0.0–1.0).
    pub change_rate: f64,
    /// Fleet endpoints (`--fleet addr,addr,...`): when nonempty, traffic is
    /// routed by content hash over the consistent-hash ring through a
    /// [`FleetClient`] instead of dialing `--addr` directly.
    pub fleet: Vec<String>,
    /// Chaos mode (`--kill-one`): boot an in-process fleet of three cached
    /// daemons, kill one mid-run, and require byte-identity plus at least
    /// one recorded failover — proving a dead daemon degrades to misses,
    /// never to errors.
    pub kill_one: bool,
    /// How long the initial connection keeps retrying (milliseconds), so
    /// loadgen can be launched concurrently with a booting server.  No CLI
    /// flag; tests shrink it.
    pub connect_deadline_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7870".to_string(),
            plan: String::new(),
            clients: 4,
            images: 32,
            image_size: 160,
            seed: 42,
            verify: true,
            shutdown: false,
            repeat_ratio: 0.0,
            pipeline_depth: 1,
            expect_cache_hits: false,
            video: false,
            change_rate: 0.1,
            fleet: Vec::new(),
            kill_one: false,
            connect_deadline_ms: 15_000,
        }
    }
}

const CONNECT_RETRY: Duration = Duration::from_millis(250);

/// Per-dial connect timeout for loadgen workers: a thousand-way fan-out can
/// momentarily overflow the listener's accept backlog, and a dropped SYN
/// would otherwise sit in the OS default connect timeout for minutes.
const CLIENT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// The client configuration every loadgen worker dials with: a bounded
/// connect deadline (a thousand-way fan-out can momentarily overflow the
/// accept backlog) and the run's pipeline depth.
fn worker_config(addr: &str, pipeline_depth: usize) -> ClientConfig {
    ClientConfig::new(addr)
        .with_connect_deadline(CLIENT_CONNECT_TIMEOUT)
        .with_pipeline_depth(pipeline_depth)
}

/// Dials one loadgen worker connection under a bounded timeout, retrying a
/// few times so transient backlog overflow does not fail the whole run.
fn connect_worker(addr: &str, client_idx: usize, pipeline_depth: usize) -> Result<Client, String> {
    let mut last = String::new();
    for attempt in 0..3 {
        if attempt > 0 {
            std::thread::sleep(CONNECT_RETRY);
        }
        match Client::open(&worker_config(addr, pipeline_depth)) {
            Ok(client) => return Ok(client),
            Err(e) => last = e.to_string(),
        }
    }
    Err(format!("client {client_idx}: connect failed: {last}"))
}

/// Connects with retries until `deadline_ms` elapses, so loadgen can be
/// launched concurrently with a still-booting server (as the CI smoke job
/// does).
fn connect_with_retry(addr: &str, deadline_ms: u64) -> Result<Client, String> {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    loop {
        match Client::open(&ClientConfig::new(addr)) {
            Ok(client) => return Ok(client),
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(CONNECT_RETRY);
            }
            Err(e) => return Err(format!("could not connect to {addr}: {e}")),
        }
    }
}

/// Per-client outcome of a loadgen run.
#[derive(Debug, Default, Clone)]
struct ClientOutcome {
    requests: usize,
    pixels: u64,
    mismatches: usize,
    busy: usize,
    cache_hits: usize,
    tiles_hit: u64,
    tiles_recomputed: u64,
    elapsed_secs: f64,
}

/// Resolves loadgen's `--plan` flag for the local reference pass: `None`
/// when the flag is empty (keep the exact serial reference), otherwise the
/// parsed or calibrated plan.
fn resolve_local_plan(config: &LoadgenConfig) -> Result<Option<ResolvedPlan>, String> {
    if config.plan.trim().is_empty() {
        return Ok(None);
    }
    resolve_plan(&config.plan, || Ok(SegmentPlan::default())).map(Some)
}

/// Deterministic xorshift64* generator for the traffic shape (no external
/// RNG on this path; the dataset generator owns its own seeding).
struct TrafficRng(u64);

impl TrafficRng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The request sequence for a loadgen run: request `i` either introduces
/// image `i` or — with probability `repeat_ratio` — repeats the image of an
/// earlier request, biased quadratically toward the head of the sequence
/// (Zipf-ish popularity: a few images soak up most of the repeats).
/// Deterministic in `seed`.
fn request_sequence(n: usize, repeat_ratio: f64, seed: u64) -> Vec<usize> {
    let mut rng = TrafficRng::new(seed);
    let mut seq: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && rng.next_unit() < repeat_ratio {
            let u = rng.next_unit();
            let j = ((u * u) * i as f64) as usize;
            seq.push(seq[j.min(i - 1)]);
        } else {
            seq.push(i);
        }
    }
    seq
}

/// Drives the configured traffic and renders the report.
///
/// Errors (rather than reporting) on connection failure, any protocol/server
/// error, or — when verification is on — any reply that is not
/// byte-identical to the local serial reference, so a supervising script
/// fails loudly.
pub fn loadgen_report(config: &LoadgenConfig) -> Result<String, String> {
    if config.kill_one || !config.fleet.is_empty() {
        return loadgen_fleet_report(config);
    }
    if config.video {
        return loadgen_video_report(config);
    }
    let clients = config.clients.max(1);
    // Each client holds one socket (and the kernel a few more); a
    // thousand-client run overruns the common 1024 soft descriptor limit.
    #[cfg(unix)]
    iqft_serve::poll::raise_nofile_limit((clients as u64).saturating_mul(2) + 512);
    let depth = config.pipeline_depth.clamp(1, protocol::MAX_PIPELINE_DEPTH);
    let images = throughput_images(&ThroughputConfig {
        images: config.images,
        image_size: config.image_size,
        seed: config.seed,
        ..ThroughputConfig::default()
    });
    // Which image each request carries: with --repeat-ratio this is
    // Zipf-ish repeated traffic, the shape the server's result cache is
    // built for; at 0.0 every request is a distinct image.
    let sequence = request_sequence(config.images, config.repeat_ratio, config.seed);
    // The reference pass runs locally: whatever classifier/tiling/backend
    // the *server* was booted with, its replies — cache hits and misses
    // alike — must be byte-identical to this by construction.  `--plan`
    // only picks the backend the reference pass runs on (labels are
    // byte-identical across backends); the default stays the serial engine.
    let resolved = resolve_local_plan(config)?;
    let reference: Vec<LabelMap> = if config.verify {
        let engine = resolved
            .as_ref()
            .map(|r| r.plan.engine())
            .unwrap_or_else(SegmentEngine::serial);
        let local = IqftRgbSegmenter::paper_default().with_engine(engine);
        images.iter().map(|img| local.segment_rgb(img)).collect()
    } else {
        Vec::new()
    };

    // Probe once with retries so a freshly-booted server has time to bind.
    let mut probe = connect_with_retry(&config.addr, config.connect_deadline_ms)?;
    probe.ping().map_err(|e| format!("ping failed: {e}"))?;

    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let images = &images;
                let reference = &reference;
                let sequence = &sequence;
                let addr = config.addr.as_str();
                let verify = config.verify;
                scope.spawn(move || -> Result<ClientOutcome, String> {
                    let mut client = connect_worker(addr, client_idx, depth)?;
                    // This client's share of the request sequence, pipelined
                    // over one connection with up to `depth` in flight.
                    let mine: Vec<usize> = (0..sequence.len())
                        .filter(|idx| idx % clients == client_idx)
                        .collect();
                    let refs: Vec<&imaging::RgbImage> =
                        mine.iter().map(|&idx| &images[sequence[idx]]).collect();
                    let started = Instant::now();
                    let replies = client.segment_pipelined(&refs, true).map_err(|e| {
                        format!("client {client_idx}: pipelined segment failed: {e}")
                    })?;
                    let mut outcome = ClientOutcome {
                        elapsed_secs: started.elapsed().as_secs_f64(),
                        ..ClientOutcome::default()
                    };
                    for (&idx, reply) in mine.iter().zip(&replies) {
                        match reply {
                            SegmentOutcome::Done { labels, cached }
                            | SegmentOutcome::Failover { labels, cached, .. } => {
                                outcome.requests += 1;
                                outcome.pixels += labels.len() as u64;
                                outcome.cache_hits += usize::from(*cached);
                                if verify && labels != &reference[sequence[idx]] {
                                    outcome.mismatches += 1;
                                }
                            }
                            // The server shed this request under overload;
                            // it was never executed, so there is nothing to
                            // verify.
                            SegmentOutcome::Busy => outcome.busy += 1,
                        }
                    }
                    Ok(outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let unique_images = {
        let mut seen = sequence.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Loadgen: {} requests over {} unique images ({}x{}) across {} clients \
         (pipeline depth {}) against {}",
        config.images,
        unique_images,
        config.image_size,
        config.image_size * 3 / 4,
        clients,
        depth,
        config.addr,
    );
    if let Some(resolved) = &resolved {
        let _ = writeln!(out, "  local reference plan: [{}]", resolved.plan);
        if let Some(report) = &resolved.calibration {
            let _ = writeln!(out, "  local calibration: {}", report.summary());
        }
    }
    let mut total = ClientOutcome::default();
    for (idx, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().map_err(|e| e.clone())?;
        let _ = writeln!(
            out,
            "  client {idx}: {:>4} requests  {:>3} busy  {:>4} cache hits  {:>8.3} Mpx  \
             {:>8.2} ms  {:>7.2} Mpx/s",
            outcome.requests,
            outcome.busy,
            outcome.cache_hits,
            outcome.pixels as f64 / 1e6,
            outcome.elapsed_secs * 1e3,
            outcome.pixels as f64 / 1e6 / outcome.elapsed_secs.max(1e-9),
        );
        total.requests += outcome.requests;
        total.pixels += outcome.pixels;
        total.mismatches += outcome.mismatches;
        total.busy += outcome.busy;
        total.cache_hits += outcome.cache_hits;
    }
    let _ = writeln!(
        out,
        "  total: {} requests ({} cache hits, {} busy-rejected), {:.3} Mpx in {:.2} ms -> \
         {:.2} Mpx/s over the wire",
        total.requests,
        total.cache_hits,
        total.busy,
        total.pixels as f64 / 1e6,
        wall_secs * 1e3,
        total.pixels as f64 / 1e6 / wall_secs.max(1e-9),
    );
    if config.verify {
        if total.mismatches > 0 {
            return Err(format!(
                "verify: FAILED — {} of {} replies differ from the local serial reference",
                total.mismatches, total.requests
            ));
        }
        let _ = writeln!(
            out,
            "  verify: all {} replies (hits and misses alike) byte-identical to the local \
             serial reference",
            total.requests
        );
    }

    finish_report(&mut out, &mut probe, config)?;
    Ok(out)
}

/// The shared report tail: fetches the server's statistics snapshot, renders
/// it, enforces `--expect-cache-hits` (whole-image hits in the default mode,
/// delta *tile* hits in `--video` mode), and sends the shutdown frame when
/// asked.
fn finish_report(
    out: &mut String,
    probe: &mut Client,
    config: &LoadgenConfig,
) -> Result<(), String> {
    let stats = probe
        .stats()
        .map_err(|e| format!("stats request failed: {e}"))?;
    let _ = writeln!(
        out,
        "  server: plan [{}], {} mode, {} conns ({} open), {} requests ({} segment), \
         {:.3} Mpx, {:.2} Mpx/s since boot",
        stats.plan,
        if stats.serve_mode.is_empty() {
            "unknown"
        } else {
            stats.serve_mode.as_str()
        },
        stats.connections_total,
        stats.connections_open,
        stats.requests_total,
        stats.segment_requests,
        stats.pixels_total as f64 / 1e6,
        stats.mpix_per_sec,
    );
    let _ = writeln!(
        out,
        "  server arena: {} allocations, {} reuses ({} pooled); max_inflight {}; {} protocol errors",
        stats.arena_allocations,
        stats.arena_reuses,
        stats.arena_pooled,
        stats.max_inflight,
        stats.protocol_errors,
    );
    let _ = writeln!(
        out,
        "  server admission: max_queue {}, {} busy rejections",
        if stats.max_queue > 0 {
            stats.max_queue.to_string()
        } else {
            "unbounded".to_string()
        },
        stats.busy_rejections,
    );
    if stats.lat_count > 0 {
        let _ = writeln!(
            out,
            "  server latency: p50 {} us, p90 {} us, p99 {} us, p999 {} us, max {} us \
             over {} ops",
            stats.lat_p50_us,
            stats.lat_p90_us,
            stats.lat_p99_us,
            stats.lat_p999_us,
            stats.lat_max_us,
            stats.lat_count,
        );
    }
    if !stats.calibration.is_empty() {
        let _ = writeln!(out, "  server calibration: {}", stats.calibration);
    }
    if stats.cache_capacity_bytes > 0 {
        let _ = writeln!(
            out,
            "  server cache: {} hits, {} misses, {} evictions; {} entries, \
             {:.1}/{:.0} MiB used",
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            stats.cache_entries,
            stats.cache_bytes as f64 / (1 << 20) as f64,
            stats.cache_capacity_bytes as f64 / (1 << 20) as f64,
        );
    } else {
        let _ = writeln!(out, "  server cache: off");
    }
    // Forward-compatible keys travel in `extra`; read them through the
    // typed accessor instead of re-parsing the snapshot text.
    if let Some(entries) = stats.extra_u64("cache_warm_loaded_entries") {
        let _ = writeln!(
            out,
            "  server cache persistence: warm-loaded {} entries ({:.1} MiB){}",
            entries,
            stats.extra_u64("cache_warm_loaded_bytes").unwrap_or(0) as f64 / (1 << 20) as f64,
            match stats.extra.get("cache_warm_error") {
                Some(why) => format!("; last load error: {why}"),
                None => String::new(),
            },
        );
    }
    let delta_total = stats.delta_tiles_hit + stats.delta_tiles_recomputed;
    if delta_total > 0 {
        let _ = writeln!(
            out,
            "  server delta: {} tiles hit, {} recomputed ({:.1}% tile hit ratio)",
            stats.delta_tiles_hit,
            stats.delta_tiles_recomputed,
            stats.delta_tiles_hit as f64 * 100.0 / delta_total as f64,
        );
    }
    if config.expect_cache_hits {
        if config.video {
            if stats.delta_tiles_hit == 0 {
                return Err(format!(
                    "expected delta tile hits, but the server reports none (cache {}; {} tiles \
                     recomputed)",
                    if stats.cache_capacity_bytes > 0 {
                        "enabled"
                    } else {
                        "DISABLED"
                    },
                    stats.delta_tiles_recomputed,
                ));
            }
        } else if stats.cache_hits == 0 {
            return Err(format!(
                "expected cache hits, but the server reports none (cache {}; {} misses)",
                if stats.cache_capacity_bytes > 0 {
                    "enabled"
                } else {
                    "DISABLED"
                },
                stats.cache_misses,
            ));
        }
    }

    if config.shutdown {
        probe
            .shutdown()
            .map_err(|e| format!("shutdown request failed: {e}"))?;
        let _ = writeln!(out, "  shutdown: acknowledged, server is draining");
    }
    Ok(())
}

/// The `--fleet` / `--kill-one` traffic shape: route the whole request
/// sequence by content hash over a [`FleetClient`] (per-endpoint pipelined
/// bursts), optionally killing one daemon halfway through.
///
/// With `--kill-one` the fleet is self-contained: three cached in-process
/// daemons boot on ephemeral loopback ports, the run streams its first half
/// against all three, then the daemon owning the next image is stopped
/// hard, and the second half must still verify byte-identically — the dead
/// daemon's keys come back as counted failover *misses*, never errors.
/// Without it, `--fleet addr,addr,...` drives externally-booted daemons.
fn loadgen_fleet_report(config: &LoadgenConfig) -> Result<String, String> {
    if config.video {
        return Err("--fleet/--kill-one and --video are mutually exclusive".to_string());
    }
    if config.kill_one && !config.fleet.is_empty() {
        return Err(
            "--kill-one boots its own in-process fleet; it cannot be combined with --fleet"
                .to_string(),
        );
    }
    // Chaos mode boots its own three-daemon fleet, caches on, so the run is
    // self-contained and the kill is a real (hard) stop.
    let mut booted: Vec<Option<Server>> = Vec::new();
    let addrs: Vec<String> = if config.kill_one {
        for _ in 0..3 {
            let server = Server::bind(
                "127.0.0.1:0",
                ServerConfig::new(SegmentPlan::default())
                    .with_cache(CacheConfig::with_capacity_mb(64)),
            )
            .map_err(|e| format!("failed to boot chaos fleet daemon: {e}"))?;
            booted.push(Some(server));
        }
        booted
            .iter()
            .map(|s| s.as_ref().unwrap().local_addr().to_string())
            .collect()
    } else {
        config.fleet.clone()
    };
    if addrs.is_empty() {
        return Err("--fleet needs at least one addr".to_string());
    }

    // Preflight the external daemons.  A dead endpoint is not fatal — its
    // keys fail over to the next ring owner and get counted — but a fleet
    // with *no* live endpoint is a configuration error worth failing fast.
    if !config.kill_one {
        let mut live = 0usize;
        for addr in &addrs {
            match connect_with_retry(addr, config.connect_deadline_ms) {
                Ok(mut probe) => {
                    probe
                        .ping()
                        .map_err(|e| format!("ping {addr} failed: {e}"))?;
                    live += 1;
                }
                Err(_) => eprintln!(
                    "loadgen: fleet endpoint {addr} is unreachable; its keys will fail over"
                ),
            }
        }
        if live == 0 {
            return Err(format!(
                "no fleet endpoint answered a ping (tried {})",
                addrs.join(", ")
            ));
        }
    }

    let depth = config.pipeline_depth.clamp(1, protocol::MAX_PIPELINE_DEPTH);
    let images = throughput_images(&ThroughputConfig {
        images: config.images,
        image_size: config.image_size,
        seed: config.seed,
        ..ThroughputConfig::default()
    });
    let sequence = request_sequence(config.images, config.repeat_ratio, config.seed);
    let resolved = resolve_local_plan(config)?;
    let reference: Vec<LabelMap> = if config.verify {
        let engine = resolved
            .as_ref()
            .map(|r| r.plan.engine())
            .unwrap_or_else(SegmentEngine::serial);
        let local = IqftRgbSegmenter::paper_default().with_engine(engine);
        images.iter().map(|img| local.segment_rgb(img)).collect()
    } else {
        Vec::new()
    };

    let fleet_config = ClientConfig::fleet(addrs.iter().cloned())
        .with_connect_deadline(CLIENT_CONNECT_TIMEOUT)
        .with_pipeline_depth(depth);
    let mut fleet = FleetClient::open(&fleet_config).map_err(|e| e.to_string())?;

    // Two halves so --kill-one has a "mid-run" to kill at; without the
    // chaos flag the split is invisible (same connections, same ring).
    let split = if config.kill_one {
        (sequence.len() / 2).max(1)
    } else {
        sequence.len()
    };
    let started = Instant::now();
    let mut outcome = ClientOutcome::default();
    let mut failovers = 0usize;
    let mut victim: Option<usize> = None;
    for (half, range) in [(0usize, 0..split), (1, split..sequence.len())] {
        if range.is_empty() {
            continue;
        }
        if half == 1 && config.kill_one {
            // Kill the daemon that owns the next image, so the second half
            // is guaranteed to exercise failover.
            let owner = fleet
                .ring()
                .owner(iqft_pipeline::route_hash(&images[sequence[range.start]]));
            if let Some(server) = booted[owner].take() {
                server.shutdown_now();
                server.join();
            }
            victim = Some(owner);
        }
        let slice: Vec<usize> = sequence[range].to_vec();
        let refs: Vec<&imaging::RgbImage> = slice.iter().map(|&img| &images[img]).collect();
        let replies = fleet
            .segment_pipelined(&refs, true)
            .map_err(|e| format!("fleet pipelined segment failed: {e}"))?;
        for (&img, reply) in slice.iter().zip(&replies) {
            failovers += usize::from(reply.tried() > 0);
            match reply.labels() {
                Some(labels) => {
                    outcome.requests += 1;
                    outcome.pixels += labels.len() as u64;
                    outcome.cache_hits += usize::from(reply.cached());
                    if config.verify && labels != &reference[img] {
                        outcome.mismatches += 1;
                    }
                }
                None => outcome.busy += 1,
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Loadgen (fleet): {} requests ({}x{}) by content hash over {} daemons \
         (pipeline depth {}{})",
        config.images,
        config.image_size,
        config.image_size * 3 / 4,
        addrs.len(),
        depth,
        if config.kill_one {
            "; chaos: kill one mid-run"
        } else {
            ""
        },
    );
    if let Some(resolved) = &resolved {
        let _ = writeln!(out, "  local reference plan: [{}]", resolved.plan);
    }
    for (idx, (addr, stats)) in addrs.iter().zip(fleet.stats()).enumerate() {
        let _ = writeln!(
            out,
            "  endpoint {idx} ({addr}): {:>4} requests  {:>4} hits  {:>3} busy  \
             {:>3} errors  {:>3} failovers{}",
            stats.requests,
            stats.hits,
            stats.busy,
            stats.errors,
            stats.failovers,
            if victim == Some(idx) {
                "  [killed mid-run]"
            } else {
                ""
            },
        );
    }
    let _ = writeln!(
        out,
        "  total: {} requests ({} cache hits, {} busy, {} failed over), {:.3} Mpx in \
         {:.2} ms -> {:.2} Mpx/s over the wire",
        outcome.requests,
        outcome.cache_hits,
        outcome.busy,
        failovers,
        outcome.pixels as f64 / 1e6,
        wall_secs * 1e3,
        outcome.pixels as f64 / 1e6 / wall_secs.max(1e-9),
    );
    if config.verify {
        if outcome.mismatches > 0 {
            return Err(format!(
                "verify: FAILED — {} of {} replies differ from the local serial reference",
                outcome.mismatches, outcome.requests
            ));
        }
        let _ = writeln!(
            out,
            "  verify: all {} replies (hits, misses, and failovers alike) byte-identical \
             to the local serial reference",
            outcome.requests
        );
    }
    if config.kill_one {
        if failovers == 0 {
            return Err(
                "chaos: killed a daemon mid-run but recorded no failovers — the kill was \
                 not exercised"
                    .to_string(),
            );
        }
        let _ = writeln!(
            out,
            "  chaos: killed endpoint {} mid-run; {} requests degraded to graceful \
             failover misses, zero errors",
            victim.expect("kill-one picked a victim"),
            failovers,
        );
    }
    if config.expect_cache_hits && outcome.cache_hits == 0 {
        return Err(format!(
            "expected cache hits, but no fleet endpoint served one ({} requests)",
            outcome.requests
        ));
    }
    if config.shutdown {
        let acknowledged = fleet.shutdown_all();
        let _ = writeln!(
            out,
            "  shutdown: acknowledged by {acknowledged} of {} daemons",
            addrs.len()
        );
    }
    for server in booted.into_iter().flatten() {
        // Self-booted chaos daemons must come down with the run: without
        // `--shutdown` no drain was sent, and joining a still-listening
        // server would block forever.
        if !config.shutdown {
            server.shutdown_now();
        }
        server.join();
    }
    Ok(out)
}

/// The `--video` traffic shape: each client plays its own deterministic
/// synthetic video stream ([`datasets::synthetic_video`]) through the
/// per-tile delta op in lockstep, so consecutive frames share most of their
/// tiles and the server's delta cache answers the unchanged ones.  Every
/// stitched reply is cross-checked byte-for-byte against a local serial pass
/// (unless `--no-verify`).
fn loadgen_video_report(config: &LoadgenConfig) -> Result<String, String> {
    let clients = config.clients.max(1);
    #[cfg(unix)]
    iqft_serve::poll::raise_nofile_limit((clients as u64).saturating_mul(2) + 512);
    let frames_per_client = config.images.div_ceil(clients).max(2);
    let width = config.image_size;
    let height = config.image_size * 3 / 4;

    let mut probe = connect_with_retry(&config.addr, config.connect_deadline_ms)?;
    probe.ping().map_err(|e| format!("ping failed: {e}"))?;

    let started = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client_idx| {
                let addr = config.addr.as_str();
                let verify = config.verify;
                let change_rate = config.change_rate;
                let seed = config.seed;
                scope.spawn(move || -> Result<ClientOutcome, String> {
                    // Each client is its own camera: a distinct seed gives it
                    // a distinct (still deterministic) scene and motion.
                    let frames = datasets::synthetic_video(&datasets::VideoConfig {
                        frames: frames_per_client,
                        width,
                        height,
                        change_rate,
                        block: 0,
                        seed: seed ^ ((client_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    });
                    let serial =
                        IqftRgbSegmenter::paper_default().with_engine(SegmentEngine::serial());
                    let mut client = connect_worker(addr, client_idx, 1)?;
                    let started = Instant::now();
                    let mut outcome = ClientOutcome::default();
                    for frame in &frames {
                        let (reply, hit, recomputed) =
                            client.segment_delta(frame).map_err(|e| {
                                format!("client {client_idx}: delta segment failed: {e}")
                            })?;
                        let Some(labels) = reply.labels() else {
                            // Overload shedding: the frame was refused, not
                            // mis-served; keep streaming the rest.
                            outcome.busy += 1;
                            continue;
                        };
                        outcome.requests += 1;
                        outcome.pixels += labels.len() as u64;
                        outcome.tiles_hit += u64::from(hit);
                        outcome.tiles_recomputed += u64::from(recomputed);
                        if verify && *labels != serial.segment_rgb(frame) {
                            outcome.mismatches += 1;
                        }
                    }
                    outcome.elapsed_secs = started.elapsed().as_secs_f64();
                    Ok(outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Loadgen (video): {} clients x {} frames ({}x{}, change rate {:.0}%) against {}",
        clients,
        frames_per_client,
        width,
        height,
        config.change_rate * 100.0,
        config.addr,
    );
    let mut total = ClientOutcome::default();
    for (idx, outcome) in outcomes.iter().enumerate() {
        let outcome = outcome.as_ref().map_err(|e| e.clone())?;
        let _ = writeln!(
            out,
            "  client {idx}: {:>4} frames  {:>5} tiles hit  {:>5} recomputed  {:>8.3} Mpx  \
             {:>7.2} Mpx/s",
            outcome.requests,
            outcome.tiles_hit,
            outcome.tiles_recomputed,
            outcome.pixels as f64 / 1e6,
            outcome.pixels as f64 / 1e6 / outcome.elapsed_secs.max(1e-9),
        );
        total.requests += outcome.requests;
        total.pixels += outcome.pixels;
        total.mismatches += outcome.mismatches;
        total.busy += outcome.busy;
        total.tiles_hit += outcome.tiles_hit;
        total.tiles_recomputed += outcome.tiles_recomputed;
    }
    let tile_total = total.tiles_hit + total.tiles_recomputed;
    let _ = writeln!(
        out,
        "  total: {} frames ({} busy-rejected), {} of {} tiles from cache ({:.1}% tile hit \
         ratio), {:.3} Mpx in {:.2} ms -> {:.2} Mpx/s over the wire",
        total.requests,
        total.busy,
        total.tiles_hit,
        tile_total,
        if tile_total > 0 {
            total.tiles_hit as f64 * 100.0 / tile_total as f64
        } else {
            0.0
        },
        total.pixels as f64 / 1e6,
        wall_secs * 1e3,
        total.pixels as f64 / 1e6 / wall_secs.max(1e-9),
    );
    if config.verify {
        if total.mismatches > 0 {
            return Err(format!(
                "verify: FAILED — {} of {} stitched replies differ from the local serial \
                 reference",
                total.mismatches, total.requests
            ));
        }
        let _ = writeln!(
            out,
            "  verify: all {} stitched replies byte-identical to the local serial reference",
            total.requests
        );
    }
    finish_report(&mut out, &mut probe, config)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_engine::{ClassifierKind, Tiling};

    fn boot(plan: SegmentPlan) -> Server {
        boot_with_cache(plan, 0)
    }

    fn boot_with_cache(plan: SegmentPlan, cache_mb: usize) -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(plan).with_cache(CacheConfig::with_capacity_mb(cache_mb)),
        )
        .expect("ephemeral bind")
    }

    fn small_loadgen(addr: String) -> LoadgenConfig {
        LoadgenConfig {
            addr,
            clients: 3,
            images: 9,
            image_size: 40,
            seed: 7,
            verify: true,
            shutdown: true,
            connect_deadline_ms: 2_000,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn loadgen_drives_verifies_and_shuts_down_a_real_server() {
        let plan = SegmentPlan::default()
            .with_classifier(ClassifierKind::Table)
            .with_tiling(Tiling::Tiles {
                width: 16,
                height: 16,
            });
        let server = boot(plan);
        let report = loadgen_report(&small_loadgen(server.local_addr().to_string())).unwrap();
        assert!(
            report.contains("verify: all 9 replies (hits and misses alike) byte-identical"),
            "{report}"
        );
        assert!(report.contains("client 0"), "{report}");
        assert!(report.contains("server cache: off"), "{report}");
        assert!(report.contains("shutdown: acknowledged"), "{report}");
        assert!(report.contains(&plan.to_spec()), "{report}");
        // The Shutdown frame drains the server; join must not hang.
        server.join();
    }

    #[test]
    fn repeated_traffic_against_a_cached_server_reports_hits() {
        let server = boot_with_cache(SegmentPlan::default(), 64);
        let mut config = small_loadgen(server.local_addr().to_string());
        config.images = 24;
        config.repeat_ratio = 0.8;
        config.pipeline_depth = 4;
        config.expect_cache_hits = true;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("byte-identical"), "{report}");
        assert!(report.contains("server cache:"), "{report}");
        assert!(!report.contains("server cache: off"), "{report}");
        assert!(!report.contains(" 0 hits"), "{report}");
        server.join();
    }

    #[test]
    fn expect_cache_hits_fails_loudly_against_an_uncached_server() {
        let server = boot(SegmentPlan::default());
        let mut config = small_loadgen(server.local_addr().to_string());
        config.shutdown = false;
        config.repeat_ratio = 0.8;
        config.expect_cache_hits = true;
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("expected cache hits"), "{err}");
        assert!(err.contains("DISABLED"), "{err}");
        server.shutdown_now();
        server.join();
    }

    #[test]
    fn video_loadgen_hits_the_delta_cache_and_verifies_stitched_replies() {
        let plan = SegmentPlan::default().with_tiling(Tiling::Tiles {
            width: 48,
            height: 48,
        });
        let server = boot_with_cache(plan, 64);
        let mut config = small_loadgen(server.local_addr().to_string());
        config.video = true;
        config.change_rate = 0.2;
        config.clients = 2;
        config.images = 6; // 3 frames per client
        config.image_size = 160; // 160x120 frames: 12 tiles of 48x48
        config.expect_cache_hits = true;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("Loadgen (video)"), "{report}");
        assert!(
            report.contains("stitched replies byte-identical"),
            "{report}"
        );
        assert!(report.contains("server delta:"), "{report}");
        assert!(report.contains("tile hit ratio"), "{report}");
        server.join();
    }

    #[test]
    fn video_loadgen_without_a_cache_fails_the_hit_expectation() {
        let server = boot(SegmentPlan::default());
        let mut config = small_loadgen(server.local_addr().to_string());
        config.video = true;
        config.shutdown = false;
        config.expect_cache_hits = true;
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("expected delta tile hits"), "{err}");
        server.shutdown_now();
        server.join();
    }

    #[test]
    fn overloaded_server_sheds_with_busy_and_the_rest_verifies() {
        // One worker, a one-deep queue: a pipelined burst of 12 requests
        // from 2 clients must overflow admission at least once.
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::new(SegmentPlan::default())
                .with_max_inflight(1)
                .with_max_queue(1),
        )
        .expect("ephemeral bind");
        let mut config = small_loadgen(server.local_addr().to_string());
        config.clients = 2;
        config.images = 16;
        config.image_size = 120;
        config.pipeline_depth = 8;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("server admission: max_queue 1"), "{report}");
        assert!(
            !report.contains(", 0 busy rejections"),
            "a 2x8-deep burst against 1 worker + 1 queue slot must shed:\n{report}"
        );
        // Whatever was admitted verified byte-identically; loadgen reports
        // rather than fails when the shed count is nonzero.
        assert!(report.contains("byte-identical"), "{report}");
        server.join();
    }

    #[test]
    fn loadgen_plan_flag_resolves_the_reference_backend() {
        let server = boot(SegmentPlan::default());
        let mut config = small_loadgen(server.local_addr().to_string());
        config.plan = "classifier=table;tile=off;backend=threads:2".to_string();
        let report = loadgen_report(&config).unwrap();
        assert!(
            report.contains("local reference plan: [classifier=table;tile=off;backend=threads:2]"),
            "{report}"
        );
        assert!(report.contains("byte-identical"), "{report}");
        assert!(report.contains("server admission:"), "{report}");
        server.join();

        let mut config = small_loadgen("127.0.0.1:1".to_string());
        config.plan = "classifier=warp".to_string();
        config.shutdown = false;
        assert!(loadgen_report(&config).is_err());
    }

    #[test]
    fn request_sequences_are_deterministic_and_respect_the_ratio() {
        let seq = request_sequence(64, 0.0, 7);
        assert_eq!(seq, (0..64).collect::<Vec<_>>(), "no repeats at ratio 0");
        let seq = request_sequence(200, 0.8, 7);
        assert_eq!(seq, request_sequence(200, 0.8, 7), "deterministic in seed");
        assert_ne!(seq, request_sequence(200, 0.8, 8));
        let repeats = seq.iter().enumerate().filter(|&(i, &img)| img != i).count();
        // 80% nominal; leave generous slack for the small sample.
        assert!(
            (120..=190).contains(&repeats),
            "expected roughly 160 repeats, got {repeats}"
        );
        // Every repeated request replays an image introduced earlier.
        for (i, &img) in seq.iter().enumerate() {
            assert!(img <= i);
        }
    }

    #[test]
    fn ping_command_reports_liveness_and_bounded_failure() {
        let server = boot(SegmentPlan::default());
        let addr = server.local_addr().to_string();
        let ok = ping_command(&addr, 5, 10).unwrap();
        assert!(ok.contains("pong"), "{ok}");
        server.shutdown_now();
        server.join();
        let err = ping_command("127.0.0.1:1", 2, 1).unwrap_err();
        assert!(err.contains("after 2 attempts"), "{err}");
    }

    #[test]
    fn loadgen_fails_loudly_when_no_server_listens() {
        let mut config = small_loadgen("127.0.0.1:1".to_string());
        config.shutdown = false;
        config.connect_deadline_ms = 100;
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("could not connect"), "{err}");
    }

    #[test]
    fn serve_command_rejects_bad_flags() {
        let config = ServeCliConfig {
            classifier: "gpu".to_string(),
            ..ServeCliConfig::default()
        };
        assert!(serve_command(&config).is_err());
        let config = ServeCliConfig {
            addr: "256.256.256.256:99999".to_string(),
            ..ServeCliConfig::default()
        };
        assert!(serve_command(&config).unwrap_err().contains("bind"));
    }

    #[test]
    fn fleet_loadgen_routes_over_external_daemons_and_reports_per_endpoint() {
        let a = boot_with_cache(SegmentPlan::default(), 64);
        let b = boot_with_cache(SegmentPlan::default(), 64);
        let mut config = small_loadgen(String::new());
        config.fleet = vec![a.local_addr().to_string(), b.local_addr().to_string()];
        config.images = 16;
        config.repeat_ratio = 0.6;
        config.pipeline_depth = 4;
        config.expect_cache_hits = true;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("Loadgen (fleet)"), "{report}");
        assert!(report.contains("over 2 daemons"), "{report}");
        assert!(report.contains("endpoint 0"), "{report}");
        assert!(report.contains("endpoint 1"), "{report}");
        assert!(
            report.contains("byte-identical to the local serial reference"),
            "{report}"
        );
        assert!(
            report.contains("shutdown: acknowledged by 2 of 2"),
            "{report}"
        );
        a.join();
        b.join();
    }

    #[test]
    fn fleet_loadgen_degrades_when_an_endpoint_is_already_dead() {
        let live = boot_with_cache(SegmentPlan::default(), 64);
        // An address nothing listens on: bind an ephemeral port, then drop
        // the listener before the run.
        let dead = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .to_string();
        let mut config = small_loadgen(String::new());
        config.fleet = vec![live.local_addr().to_string(), dead];
        config.connect_deadline_ms = 300;
        config.images = 12;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("byte-identical"), "{report}");
        assert!(
            report.contains("shutdown: acknowledged by 1 of 2"),
            "{report}"
        );
        live.join();
    }

    #[test]
    fn kill_one_chaos_run_degrades_to_failovers_and_still_verifies() {
        let mut config = small_loadgen(String::new());
        config.kill_one = true;
        config.images = 12;
        config.pipeline_depth = 4;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("chaos: kill one mid-run"), "{report}");
        assert!(report.contains("[killed mid-run]"), "{report}");
        assert!(report.contains("chaos: killed endpoint"), "{report}");
        assert!(
            report.contains("byte-identical to the local serial reference"),
            "{report}"
        );
        // Exactly one of the three booted daemons was killed; the other two
        // acknowledge the shutdown.
        assert!(report.contains("acknowledged by 2 of 3"), "{report}");
    }

    #[test]
    fn kill_one_chaos_fleet_tears_down_without_explicit_shutdown() {
        // Regression: the self-booted chaos fleet must hard-stop its
        // surviving daemons when no --shutdown drain was requested —
        // otherwise the final join blocks forever.
        let mut config = small_loadgen(String::new());
        config.kill_one = true;
        config.shutdown = false;
        config.images = 12;
        config.pipeline_depth = 4;
        let report = loadgen_report(&config).unwrap();
        assert!(report.contains("chaos: killed endpoint"), "{report}");
        assert!(!report.contains("shutdown: acknowledged"), "{report}");
    }

    #[test]
    fn fleet_flags_reject_incompatible_combinations() {
        let mut config = small_loadgen(String::new());
        config.kill_one = true;
        config.video = true;
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");

        let mut config = small_loadgen(String::new());
        config.kill_one = true;
        config.fleet = vec!["127.0.0.1:1".to_string()];
        let err = loadgen_report(&config).unwrap_err();
        assert!(err.contains("cannot be combined"), "{err}");
    }

    #[test]
    fn loadgen_reports_a_warm_loaded_cache_after_a_persisted_restart() {
        let dir = std::env::temp_dir().join("iqft-experiments-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("loadgen-{}.snap", std::process::id()));
        std::fs::remove_file(&path).ok();
        let boot = || {
            Server::bind(
                "127.0.0.1:0",
                ServerConfig::new(SegmentPlan::default())
                    .with_cache(CacheConfig::with_capacity_mb(64))
                    .with_cache_persist(&path),
            )
            .expect("ephemeral bind")
        };

        // First life: populate, then `--shutdown` drains, which saves.
        let server = boot();
        let report = loadgen_report(&small_loadgen(server.local_addr().to_string())).unwrap();
        assert!(report.contains("byte-identical"), "{report}");
        server.join();

        // Second life: the report must surface the warm load through the
        // typed `extra_u64` accessor, and repeats hit without re-populating.
        let server = boot();
        let mut config = small_loadgen(server.local_addr().to_string());
        config.repeat_ratio = 0.0; // only warm entries can hit
        config.expect_cache_hits = true;
        let report = loadgen_report(&config).unwrap();
        assert!(
            report.contains("server cache persistence: warm-loaded 9 entries"),
            "{report}"
        );
        assert!(report.contains("byte-identical"), "{report}");
        server.join();
        std::fs::remove_file(&path).ok();
    }
}
