//! Regeneration of the paper's tables.

use crate::evaluate::{evaluate_methods_with, DatasetSummary, Method};
use datasets::{PascalVocLikeConfig, PascalVocLikeDataset, XViewLikeConfig, XViewLikeDataset};
use iqft_seg::analysis::table2_rows;
use iqft_seg::theta::table1_rows;
use iqft_seg::ForegroundPolicy;
use seg_engine::SegmentEngine;
use xpar::Backend;

/// Renders Table I (θ and the corresponding threshold values, eq. 15) as
/// plain text, matching the paper's rows.
pub fn table1_text() -> String {
    let mut out = String::from("Table I: Parameter θ and the corresponding threshold value\n");
    out.push_str(&format!("{:<12} {}\n", "θ", "Threshold value, I_th"));
    for row in table1_rows() {
        let thresholds: Vec<String> = row.thresholds.iter().map(|t| format!("{t:.3}")).collect();
        let suffix = if thresholds.len() > 1 {
            " (multiple)"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<12} {}{}\n",
            row.theta_label,
            thresholds.join(", "),
            suffix
        ));
    }
    out
}

/// Renders Table II (θ and the possible number of segments) as plain text.
///
/// `samples` random RGB triples are classified per configuration (the paper
/// uses 100,000).
pub fn table2_text(samples: usize, seed: u64) -> String {
    let mut out = String::from("Table II: Parameter θ and the possible number of segments\n");
    out.push_str(&format!("{:<28} {}\n", "θ", "max. number of segments"));
    for row in table2_rows(samples, seed) {
        out.push_str(&format!("{:<28} {}\n", row.label, row.max_segments));
    }
    out
}

/// Configuration of the Table III comparison.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Number of VOC-like scenes.
    pub voc_images: usize,
    /// Number of xVIEW2-like tiles.
    pub xview_images: usize,
    /// Image width/height used for both datasets.
    pub image_size: usize,
    /// Seed for dataset generation and K-means initialisation.
    pub seed: u64,
    /// Foreground-reduction policy applied to every method.
    pub policy: ForegroundPolicy,
    /// Execution backend for dataset generation and evaluation batching.
    pub backend: Backend,
}

impl Default for Table3Config {
    fn default() -> Self {
        Self {
            voc_images: 200,
            xview_images: 148,
            image_size: 160,
            seed: 42,
            policy: ForegroundPolicy::LargestIsBackground,
            backend: Backend::default(),
        }
    }
}

/// Runs the Table III comparison (all four methods on both datasets) and
/// returns the per-dataset summaries.
///
/// Both dataset generation (samples are a deterministic function of their
/// index) and evaluation run as parallel image batches on the configured
/// backend.
pub fn table3_run(config: &Table3Config) -> Vec<DatasetSummary> {
    let engine = SegmentEngine::new(config.backend);
    let methods = Method::table3_methods(config.seed);
    let voc_ds = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: config.voc_images,
        width: config.image_size,
        height: config.image_size * 3 / 4,
        seed: config.seed,
        ..PascalVocLikeConfig::default()
    });
    let voc: Vec<_> = engine.map_indexed(voc_ds.len(), |i| voc_ds.sample(i));
    let xview_ds = XViewLikeDataset::new(XViewLikeConfig {
        len: config.xview_images,
        width: config.image_size,
        height: config.image_size,
        seed: config.seed.wrapping_add(1),
        ..XViewLikeConfig::default()
    });
    let xview: Vec<_> = engine.map_indexed(xview_ds.len(), |i| xview_ds.sample(i));
    vec![
        evaluate_methods_with(
            &engine,
            "Pascal VOC 2012 (synthetic)",
            &methods,
            &voc,
            config.policy,
        ),
        evaluate_methods_with(
            &engine,
            "xVIEW2 (synthetic)",
            &methods,
            &xview,
            config.policy,
        ),
    ]
}

/// Renders the Table III summaries in the paper's layout (average mIOU and
/// runtime per method per dataset), plus the win-rate statistics quoted in
/// the paper's text.
pub fn table3_text(summaries: &[DatasetSummary]) -> String {
    let mut out = String::from(
        "Table III: Comparing the mIOU, computation time, and computational complexity\n",
    );
    for dataset in summaries {
        out.push_str(&format!("\nDataset: {}\n", dataset.dataset));
        out.push_str(&format!(
            "{:<20} {:>14} {:>16} {:>12}\n",
            "Method", "Average mIOU", "Runtime (sec.)", "mIOU<0.1 (%)"
        ));
        for m in &dataset.methods {
            out.push_str(&format!(
                "{:<20} {:>14.4} {:>16.3} {:>12.1}\n",
                m.method,
                m.average_miou,
                m.total_runtime_secs,
                m.poor_fraction * 100.0
            ));
        }
        let rgb_vs_kmeans = dataset.win_fraction("IQFT (RGB)", "K-means") * 100.0;
        let rgb_vs_otsu = dataset.win_fraction("IQFT (RGB)", "OTSU") * 100.0;
        out.push_str(&format!(
            "IQFT (RGB) outperforms K-means on {rgb_vs_kmeans:.2}% and OTSU on {rgb_vs_otsu:.2}% of images\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_text_contains_all_paper_rows() {
        let text = table1_text();
        assert!(text.contains("3π/4"));
        assert!(text.contains("0.667"));
        assert!(text.contains("0.500"));
        assert!(text.contains("0.400"));
        assert!(text.contains("0.333"));
        assert!(text.contains("multiple"));
        assert!(text.contains("0.250, 0.750"));
    }

    #[test]
    fn table2_text_reports_expected_counts() {
        let text = table2_text(20_000, 9);
        assert!(text.contains("θ1=θ2=θ3=π/4"));
        // θ=π/4 row must report one segment; mixed row two segments.
        let quarter_line = text
            .lines()
            .find(|l| {
                l.contains("π/4") && !l.contains("5π/4") && !l.contains("7π/4") && !l.contains(",")
            })
            .unwrap();
        assert!(quarter_line.trim_end().ends_with('1'), "{quarter_line}");
        let mixed_line = text.lines().find(|l| l.contains("θ1=π/4, θ2=π/2")).unwrap();
        assert!(mixed_line.trim_end().ends_with('2'), "{mixed_line}");
    }

    #[test]
    fn table3_small_run_produces_both_datasets_and_all_methods() {
        let config = Table3Config {
            voc_images: 3,
            xview_images: 3,
            image_size: 48,
            seed: 5,
            ..Table3Config::default()
        };
        let summaries = table3_run(&config);
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert_eq!(s.methods.len(), 4);
            for m in &s.methods {
                assert_eq!(m.scores.len(), 3);
                assert!((0.0..=1.0).contains(&m.average_miou));
            }
        }
        let text = table3_text(&summaries);
        assert!(text.contains("Pascal VOC 2012"));
        assert!(text.contains("xVIEW2"));
        assert!(text.contains("IQFT (RGB)"));
        assert!(text.contains("Average mIOU"));
        assert!(text.contains("outperforms K-means"));
    }
}
