//! Resolving the `--plan` flag shared by the `serve`, `throughput` and
//! `loadgen` subcommands.
//!
//! One flag, three spellings:
//!
//! * empty — fall back to the caller's per-axis flags
//!   (`--classifier`/`--tile`/`--backend`/`--threads`), exactly the
//!   pre-`--plan` behaviour;
//! * `auto` — probe the host with [`seg_engine::calibrate`] (core count plus
//!   a short tile × backend × classifier sweep over a synthetic frame) and
//!   take the fastest measured [`SegmentPlan`];
//! * anything else — a [`seg_engine::PlanSpec`] string such as
//!   `classifier=simd;tile=64x64;backend=threads:8`, parsed through
//!   `SegmentPlan::from_str`.
//!
//! Whatever the spelling, the resolved plan's output is byte-identical to
//! the exact serial reference — `--plan` only moves cost, never labels.

use iqft_seg::IqftClassifier;
use seg_engine::calibrate::calibrate;
use seg_engine::{CalibrationConfig, CalibrationReport, SegmentPlan};

/// A `--plan` flag resolved into a concrete [`SegmentPlan`], with the
/// calibration evidence kept when the plan came from `--plan auto`.
#[derive(Debug, Clone)]
pub struct ResolvedPlan {
    /// The plan every stage of the run executes with.
    pub plan: SegmentPlan,
    /// The probe sweep behind the plan (`Some` only for `--plan auto`).
    pub calibration: Option<CalibrationReport>,
}

impl ResolvedPlan {
    /// One-line provenance for stats and reports: the calibration summary
    /// plus the per-probe timings when the plan was probed, empty when it
    /// was spelled out explicitly.  This is the string `serve` hands to
    /// [`iqft_serve::ServerConfig::with_calibration`], so a `loadgen` stats
    /// poll can see *why* the daemon runs the plan it runs.
    pub fn calibration_summary(&self) -> String {
        match &self.calibration {
            Some(report) => format!("{} probes:{}", report.summary(), report.probe_log()),
            None => String::new(),
        }
    }
}

/// Resolves a `--plan` flag; `fallback` supplies the per-axis-flags plan
/// used when the flag is empty (each subcommand owns its own flag set).
pub fn resolve_plan<F>(plan_flag: &str, fallback: F) -> Result<ResolvedPlan, String>
where
    F: FnOnce() -> Result<SegmentPlan, String>,
{
    match plan_flag.trim() {
        "" => Ok(ResolvedPlan {
            plan: fallback()?,
            calibration: None,
        }),
        "auto" => {
            let report = calibrate(&CalibrationConfig::default(), IqftClassifier::paper_default);
            Ok(ResolvedPlan {
                plan: report.plan,
                calibration: Some(report),
            })
        }
        spec => Ok(ResolvedPlan {
            plan: spec.parse()?,
            calibration: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_engine::{ClassifierKind, SegmentEngine, Tiling};

    #[test]
    fn empty_flag_defers_to_the_fallback() {
        let resolved = resolve_plan("", || {
            Ok(SegmentPlan::default().with_classifier(ClassifierKind::Simd))
        })
        .unwrap();
        assert_eq!(resolved.plan.classifier(), ClassifierKind::Simd);
        assert!(resolved.calibration.is_none());
        assert_eq!(resolved.calibration_summary(), "");
    }

    #[test]
    fn explicit_specs_parse_and_fallback_errors_propagate() {
        let resolved = resolve_plan("classifier=table;tile=16x8;backend=serial", || {
            unreachable!("fallback must not run for an explicit spec")
        })
        .unwrap();
        assert_eq!(resolved.plan.backend(), SegmentEngine::serial().backend());
        assert_eq!(
            resolved.plan.tiling(),
            Tiling::Tiles {
                width: 16,
                height: 8
            }
        );
        assert!(resolve_plan("classifier=warp", || Ok(SegmentPlan::default())).is_err());
        assert!(resolve_plan("", || Err("bad flags".to_string())).is_err());
    }

    #[test]
    fn auto_probes_the_host_and_reports_its_evidence() {
        let resolved = resolve_plan("auto", || unreachable!()).unwrap();
        let report = resolved.calibration.as_ref().expect("auto calibrates");
        assert!(!report.probes.is_empty());
        let summary = resolved.calibration_summary();
        assert!(summary.contains("cores="), "{summary}");
        assert!(summary.contains("probes:"), "{summary}");
        assert!(!summary.contains('\n'), "stats values are single-line");
        // The winner is one of the probed candidates.
        assert!(report.probes.iter().any(|p| p.plan == resolved.plan));
    }
}
