//! Regeneration of the paper's figures.
//!
//! Every `figN_*` function returns a plain-text report with the numbers the
//! corresponding figure conveys; when an output directory is supplied the
//! rendered images (inputs, segmentations, masks) are also written as PPM
//! files so they can be inspected visually.

use crate::evaluate::score_single;
use baselines::{multi_otsu_thresholds, otsu_threshold, KMeansSegmenter, OtsuSegmenter};
use datasets::{
    balls_scene, LabeledImage, PascalVocLikeConfig, PascalVocLikeDataset, XViewLikeConfig,
    XViewLikeDataset,
};
use imaging::hist::Histogram;
use imaging::{color, io, labels, RgbImage, Segmenter};
use iqft_seg::analysis::count_segments;
use iqft_seg::gray::labels_to_gray;
use iqft_seg::theta::theta_for_threshold;
use iqft_seg::{
    AutoThetaSearch, ForegroundPolicy, IqftGraySegmenter, IqftRgbSegmenter, ThetaParams,
};
use metrics::mean_iou;
use seg_engine::SegmentEngine;
use std::f64::consts::PI;
use std::path::Path;

fn maybe_write_rgb(out_dir: Option<&Path>, name: &str, img: &RgbImage) {
    if let Some(dir) = out_dir {
        let _ = std::fs::create_dir_all(dir);
        let _ = io::save_ppm(img, dir.join(format!("{name}.ppm")));
    }
}

/// Figs. 1–3: the eight basis-vector patterns, the transformed input pattern
/// for the worked example (α = 2.464, β = 0.025, γ = 0.246) and its
/// probability distribution.
pub fn fig1_3_text() -> String {
    let mut out = String::from(
        "Figs. 1-3: basis patterns, example input pattern and probability distribution\n",
    );
    let w = quantum::idft_matrix(8);
    out.push_str("\nBasis-state patterns (phase angle of each W-row entry, radians):\n");
    for j in 0..8 {
        let angles: Vec<String> = (0..8)
            .map(|k| format!("{:+.3}", w.get(j, k).arg()))
            .collect();
        out.push_str(&format!("|{j:03b}⟩: [{}]\n", angles.join(", ")));
    }
    let (alpha, beta, gamma) = (2.464, 0.025, 0.246);
    out.push_str(&format!(
        "\nExample input (α={alpha}, β={beta}, γ={gamma}) phase pattern:\n"
    ));
    let f = quantum::phase_vector(&[alpha, beta, gamma]);
    let angles: Vec<String> = f.iter().map(|c| format!("{:+.3}", c.arg())).collect();
    out.push_str(&format!("[{}]\n", angles.join(", ")));
    let seg = IqftRgbSegmenter::paper_default();
    let probs = seg.probabilities_from_phases(gamma, beta, alpha);
    out.push_str("\nProbability distribution over basis states (Algorithm 1 line 4):\n");
    for (j, p) in probs.iter().enumerate() {
        out.push_str(&format!("P(|{j:03b}⟩) = {p:.4}\n"));
    }
    let winner = probs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(j, _)| j)
        .unwrap();
    out.push_str(&format!(
        "Winning basis state: |{winner:03b}⟩ (the paper names this state |100⟩ in its bit-reversed figure convention)\n"
    ));
    out
}

/// Fig. 4: multiple thresholding on the coloured-balls scene — the IQFT
/// grayscale segmenter with θ = 4π selects the mid-intensity balls with one
/// parameter, while single-threshold Otsu and 2-means cannot.
pub fn fig4_report(engine: &SegmentEngine, out_dir: Option<&Path>) -> String {
    let scene = balls_scene(180, 120);
    maybe_write_rgb(out_dir, "fig4_input", &scene.image);
    let gray = color::rgb_to_gray_u8(&scene.image);

    // K-means (k = 2) on RGB.
    let km = KMeansSegmenter::binary(4)
        .with_engine(*engine)
        .segment_rgb(&scene.image);
    let (_, km_miou, _, _) = score_and_render(&km, &scene, out_dir, "fig4_kmeans");
    // Otsu single threshold.
    let otsu = OtsuSegmenter::new()
        .with_engine(*engine)
        .segment_gray(&gray);
    let (_, otsu_miou, _, _) = score_and_render(&otsu, &scene, out_dir, "fig4_otsu");
    // IQFT grayscale with θ = 4π (eq. 16 thresholds 1/8, 3/8, 5/8, 7/8).
    let iqft = IqftGraySegmenter::new(4.0 * PI).with_engine(*engine);
    let iqft_labels = iqft.segment_gray(&gray);
    maybe_write_rgb(
        out_dir,
        "fig4_iqft",
        &color::gray_to_rgb(&labels_to_gray(&iqft_labels)),
    );
    // The IQFT label is already binary (class 2 = inside one of the selected
    // bands), so it is scored directly.
    let iqft_miou = mean_iou(&iqft_labels, &scene.ground_truth);

    // Multi-level Otsu with two thresholds (what Otsu would need to match).
    let hist = Histogram::of_gray(&gray);
    let multi = multi_otsu_thresholds(&hist, 2);

    format!(
        "Fig. 4: multiple thresholding on the balls scene (θ = 4π)\n\
         target: the red and lemon balls (the non-contiguous bands 1/8-3/8 and 5/8-7/8)\n\
         K-means (k=2)      mIOU = {km_miou:.4}\n\
         Otsu (1 threshold) mIOU = {otsu_miou:.4}\n\
         IQFT gray (θ=4π)   mIOU = {iqft_miou:.4}\n\
         IQFT thresholds (eq. 16): {:?}\n\
         Otsu would need two explicit thresholds to compete: {multi:?}\n",
        IqftGraySegmenter::new(4.0 * PI).thresholds()
    )
}

fn score_and_render(
    raw_labels: &imaging::LabelMap,
    scene: &LabeledImage,
    out_dir: Option<&Path>,
    name: &str,
) -> (imaging::LabelMap, f64, f64, f64) {
    let binary = iqft_seg::reduce_to_foreground(
        raw_labels,
        ForegroundPolicy::LargestIsBackground,
        Some(&scene.image),
        Some(&scene.ground_truth),
    );
    maybe_write_rgb(out_dir, name, &labels::render_binary(&binary));
    let miou = mean_iou(&binary, &scene.ground_truth);
    (binary, miou, 0.0, 0.0)
}

/// Fig. 5: effect of the normalisation step — without `/255` normalisation
/// the phases wrap many times around the circle and the segmentation becomes
/// "noisy" (many tiny connected components).
pub fn fig5_report(engine: &SegmentEngine, out_dir: Option<&Path>) -> String {
    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 2,
        width: 96,
        height: 72,
        seed: 505,
        ..PascalVocLikeConfig::default()
    });
    let mut out = String::from("Fig. 5: effect of the normalisation process\n");
    for (i, sample) in dataset.iter().enumerate() {
        maybe_write_rgb(out_dir, &format!("fig5_image{i}"), &sample.image);
        let with_norm = IqftRgbSegmenter::paper_default()
            .with_engine(*engine)
            .segment_rgb(&sample.image);
        let without_norm = IqftRgbSegmenter::paper_default()
            .with_engine(*engine)
            .with_normalization(false)
            .segment_rgb(&sample.image);
        maybe_write_rgb(
            out_dir,
            &format!("fig5_normalized{i}"),
            &labels::render_labels(&with_norm),
        );
        maybe_write_rgb(
            out_dir,
            &format!("fig5_unnormalized{i}"),
            &labels::render_labels(&without_norm),
        );
        let (_, comp_with) = labels::connected_components(&with_norm);
        let (_, comp_without) = labels::connected_components(&without_norm);
        out.push_str(&format!(
            "image {i}: segments with normalisation = {}, without = {}; \
             connected components with = {comp_with}, without = {comp_without}\n",
            count_segments(&with_norm),
            count_segments(&without_norm),
        ));
    }
    out.push_str("(the un-normalised variant fragments into many more components — the paper's 'noisy segments')\n");
    out
}

/// Fig. 6 / Table II on real scenes: the number of segments produced on
/// images as θ grows, including the mixed configuration.
pub fn fig6_report(engine: &SegmentEngine, out_dir: Option<&Path>) -> String {
    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 3,
        width: 96,
        height: 72,
        seed: 608,
        ..PascalVocLikeConfig::default()
    });
    let configs: Vec<(String, ThetaParams)> = vec![
        ("θ=π/4".to_string(), ThetaParams::uniform(PI / 4.0)),
        ("θ=π/2".to_string(), ThetaParams::uniform(PI / 2.0)),
        ("θ=π".to_string(), ThetaParams::uniform(PI)),
        ("mixed".to_string(), ThetaParams::mixed()),
    ];
    let mut out = String::from("Fig. 6: effect of θ on the number of segments\n");
    for (i, sample) in dataset.iter().enumerate() {
        maybe_write_rgb(out_dir, &format!("fig6_image{i}"), &sample.image);
        let mut parts = Vec::new();
        for (name, thetas) in &configs {
            let seg = IqftRgbSegmenter::new(*thetas)
                .with_engine(*engine)
                .segment_rgb(&sample.image);
            maybe_write_rgb(
                out_dir,
                &format!("fig6_image{i}_{name}"),
                &labels::render_labels(&seg),
            );
            parts.push(format!("{name}: {}-seg", count_segments(&seg)));
        }
        out.push_str(&format!("image {i}: {}\n", parts.join(", ")));
    }
    out
}

/// Fig. 7: converting the Otsu threshold to θ via eq. 15 makes the IQFT
/// grayscale segmenter produce an identical mask (and therefore identical
/// mIOU).
pub fn fig7_report(engine: &SegmentEngine, out_dir: Option<&Path>) -> String {
    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: 2,
        width: 96,
        height: 72,
        seed: 707,
        ..PascalVocLikeConfig::default()
    });
    let mut out = String::from("Fig. 7: IQFT grayscale vs Otsu with the equivalent θ\n");
    for (i, sample) in dataset.iter().enumerate() {
        // The eq. 15 equivalence needs a single in-range threshold, i.e.
        // I_th ≥ 1/3 (otherwise 3·I_th < 1 introduces a second band).  Lift
        // the grayscale intensities into [100, 255] so the fitted Otsu
        // threshold is always in that regime, as in the paper's examples
        // (I_th = 0.4465 and 0.4911).
        let gray = color::rgb_to_gray_u8(&sample.image)
            .map(|p| imaging::Luma(100u8 + (p.value() as u16 * 155 / 255) as u8));
        let threshold = otsu_threshold(&Histogram::of_gray(&gray));
        // Offset by half an intensity bin so the pixels sitting exactly on the
        // Otsu bin boundary fall on the same side under both decision rules
        // (`I > threshold` vs `cos(Iθ) < 0`).
        let theta = theta_for_threshold((threshold + 0.5 / 255.0).min(1.0));
        let otsu_mask = OtsuSegmenter::new()
            .with_engine(*engine)
            .segment_gray(&gray);
        let iqft_mask = IqftGraySegmenter::new(theta)
            .with_engine(*engine)
            .segment_gray(&gray);
        let identical = otsu_mask == iqft_mask;
        let otsu_miou = mean_iou(&otsu_mask, &sample.ground_truth);
        let iqft_miou = mean_iou(&iqft_mask, &sample.ground_truth);
        maybe_write_rgb(out_dir, &format!("fig7_image{i}"), &sample.image);
        maybe_write_rgb(
            out_dir,
            &format!("fig7_otsu{i}"),
            &labels::render_binary(&otsu_mask),
        );
        maybe_write_rgb(
            out_dir,
            &format!("fig7_iqft{i}"),
            &labels::render_binary(&iqft_mask),
        );
        out.push_str(&format!(
            "image {i}: I_th = {threshold:.4}, θ = {:.4}π, identical masks = {identical}, \
             mIOU Otsu = {otsu_miou:.4}, mIOU IQFT = {iqft_miou:.4}\n",
            theta / PI
        ));
    }
    out
}

/// Figs. 8–9: qualitative examples where the IQFT RGB algorithm beats both
/// baselines, with per-image mIOU.  `xview` selects the satellite-like
/// dataset (Fig. 9) instead of the VOC-like one (Fig. 8).
pub fn fig8_9_report(
    engine: &SegmentEngine,
    xview: bool,
    out_dir: Option<&Path>,
    scan: usize,
) -> String {
    let samples: Vec<LabeledImage> = if xview {
        XViewLikeDataset::new(XViewLikeConfig {
            len: scan,
            width: 96,
            height: 96,
            seed: 909,
            ..XViewLikeConfig::default()
        })
        .iter()
        .collect()
    } else {
        PascalVocLikeDataset::new(PascalVocLikeConfig {
            len: scan,
            width: 96,
            height: 72,
            seed: 808,
            ..PascalVocLikeConfig::default()
        })
        .iter()
        .collect()
    };
    let figure = if xview { "Fig. 9" } else { "Fig. 8" };
    let dataset_name = if xview { "xVIEW2-like" } else { "VOC-like" };
    let policy = ForegroundPolicy::LargestIsBackground;
    // The batch parallelism lives at the image level; each per-image
    // segmenter runs serially (see `evaluate_method_with`).
    let kmeans = KMeansSegmenter::binary(2).with_engine(SegmentEngine::serial());
    let otsu = OtsuSegmenter::new().with_engine(SegmentEngine::serial());
    let iqft = IqftRgbSegmenter::paper_default().with_engine(SegmentEngine::serial());
    let rows: Vec<(String, f64, f64, f64)> = engine.map_images(&samples, |sample| {
        let (_, km, _, _) = score_single(&kmeans, &sample.image, &sample.ground_truth, policy);
        let (_, ot, _, _) = score_single(&otsu, &sample.image, &sample.ground_truth, policy);
        let (_, iq, _, _) = score_single(&iqft, &sample.image, &sample.ground_truth, policy);
        (sample.id.clone(), km, ot, iq)
    });
    let mut rows = rows;
    // Show the three images with the largest IQFT margin over the best baseline.
    rows.sort_by(|a, b| {
        let margin_a = a.3 - a.1.max(a.2);
        let margin_b = b.3 - b.1.max(b.2);
        margin_b.partial_cmp(&margin_a).unwrap()
    });
    let mut out = format!(
        "{figure}: qualitative examples on the {dataset_name} dataset (per-image mIOU)\n{:<18} {:>9} {:>9} {:>11}\n",
        "image", "K-means", "Otsu", "IQFT (RGB)"
    );
    for (id, km, ot, iq) in rows.iter().take(3) {
        out.push_str(&format!("{id:<18} {km:>9.4} {ot:>9.4} {iq:>11.4}\n"));
        if let Some(dir) = out_dir {
            if let Some(sample) = samples.iter().find(|s| &s.id == id) {
                maybe_write_rgb(Some(dir), &format!("{id}_input"), &sample.image);
                let seg = iqft.segment_rgb(&sample.image);
                maybe_write_rgb(
                    Some(dir),
                    &format!("{id}_iqft"),
                    &labels::render_labels(&seg),
                );
            }
        }
    }
    out
}

/// Fig. 10: per-image θ adjustment.  Finds a scene where the fixed θ = π
/// configuration performs poorly and shows the improvement from searching the
/// θ grid (scored by ground-truth mIOU, exactly as the paper adjusted per
/// image).
pub fn fig10_report(engine: &SegmentEngine, scan: usize) -> String {
    let dataset = PascalVocLikeDataset::new(PascalVocLikeConfig {
        len: scan,
        width: 96,
        height: 72,
        seed: 1010,
        ..PascalVocLikeConfig::default()
    });
    let policy = ForegroundPolicy::LargestIsBackground;
    let fixed = IqftRgbSegmenter::paper_default().with_engine(SegmentEngine::serial());
    // Score every scene in one parallel batch, then pick the one on which
    // fixed θ = π does worst (ties to the earliest scene, as before).
    let samples: Vec<LabeledImage> = dataset.iter().collect();
    let mious: Vec<f64> = engine.map_images(&samples, |sample| {
        let (_, miou, _, _) = score_single(&fixed, &sample.image, &sample.ground_truth, policy);
        miou
    });
    let (worst_idx, fixed_miou) = mious
        .iter()
        .copied()
        .enumerate()
        .fold(None::<(usize, f64)>, |acc, (i, m)| match acc {
            Some((_, best)) if best <= m => acc,
            _ => Some((i, m)),
        })
        .expect("non-empty dataset");
    let sample = samples[worst_idx].clone();
    let search = AutoThetaSearch::default().with_engine(*engine);
    let gt = sample.ground_truth.clone();
    let img = sample.image.clone();
    let result = search.best_by(&sample.image, |_, seg| {
        let binary = iqft_seg::reduce_to_foreground(seg, policy, Some(&img), Some(&gt));
        mean_iou(&binary, &gt)
    });
    format!(
        "Fig. 10: performance improvement through θ adjustment\n\
         image: {}\n\
         fixed θ = π          mIOU = {fixed_miou:.4}\n\
         adjusted θ = {:.3}π  mIOU = {:.4}\n\
         candidate scores: {}\n",
        sample.id,
        result.theta / PI,
        result.score,
        result
            .candidate_scores
            .iter()
            .map(|(t, s)| format!("{:.2}π→{s:.3}", t / PI))
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_3_reports_the_dominant_state() {
        let text = fig1_3_text();
        assert!(text.contains("Probability distribution"));
        assert!(text.contains("Winning basis state: |001⟩"));
        // All eight basis patterns are listed.
        for j in 0..8 {
            assert!(text.contains(&format!("|{j:03b}⟩")));
        }
    }

    #[test]
    fn fig4_iqft_beats_single_threshold_baselines() {
        let text = fig4_report(&SegmentEngine::default(), None);
        let miou_of = |tag: &str| -> f64 {
            text.lines()
                .find(|l| l.contains(tag))
                .and_then(|l| l.split("mIOU = ").nth(1))
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap_or(f64::NAN)
        };
        let km = miou_of("K-means");
        let otsu = miou_of("Otsu (1 threshold)");
        let iqft = miou_of("IQFT gray");
        assert!(iqft > 0.95, "IQFT mIOU {iqft}");
        assert!(iqft > km, "IQFT {iqft} vs K-means {km}");
        assert!(iqft > otsu, "IQFT {iqft} vs Otsu {otsu}");
    }

    #[test]
    fn fig5_unnormalized_variant_is_noisier() {
        let text = fig5_report(&SegmentEngine::default(), None);
        // Parse "connected components with = X, without = Y" per image and
        // check Y > X for both images.
        for line in text.lines().filter(|l| l.starts_with("image")) {
            let with: usize = line
                .split("components with = ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let without: usize = line
                .split("without = ")
                .nth(2)
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            assert!(without > with, "{line}");
        }
    }

    #[test]
    fn fig6_segment_count_grows_with_theta() {
        let text = fig6_report(&SegmentEngine::default(), None);
        for line in text.lines().filter(|l| l.starts_with("image")) {
            let seg_count = |tag: &str| -> usize {
                line.split(&format!("{tag}: "))
                    .nth(1)
                    .unwrap()
                    .split("-seg")
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            };
            let quarter = seg_count("θ=π/4");
            let half = seg_count("θ=π/2");
            let full = seg_count("θ=π");
            let mixed = seg_count("mixed");
            assert_eq!(quarter, 1, "{line}");
            assert!((1..=3).contains(&half), "{line}");
            assert!((2..=6).contains(&full), "{line}");
            assert!(mixed <= 2, "{line}");
        }
    }

    #[test]
    fn fig7_masks_are_identical() {
        let text = fig7_report(&SegmentEngine::default(), None);
        let identical_count = text.matches("identical masks = true").count();
        assert_eq!(identical_count, 2, "{text}");
    }

    #[test]
    fn fig8_and_9_produce_three_rows_each() {
        for xview in [false, true] {
            let text = fig8_9_report(&SegmentEngine::default(), xview, None, 6);
            let rows = text.lines().filter(|l| l.contains("like-")).count();
            assert_eq!(rows, 3, "{text}");
        }
    }

    #[test]
    fn fig10_adjustment_does_not_hurt() {
        let text = fig10_report(&SegmentEngine::default(), 6);
        let value_after = |tag: &str| -> f64 {
            text.lines()
                .find(|l| l.contains(tag))
                .and_then(|l| l.rsplit('=').next())
                .and_then(|v| v.trim().parse::<f64>().ok())
                .unwrap()
        };
        let fixed = value_after("fixed θ = π");
        let adjusted = value_after("adjusted θ");
        assert!(adjusted >= fixed - 1e-9, "{text}");
        assert!(text.contains("candidate scores"));
    }
}
