//! `metrics` — segmentation evaluation metrics.
//!
//! The paper scores every method with the foreground/background mean
//! intersection-over-union (its eqs. 18–19), computed with TensorFlow's
//! `MeanIoU` and with PASCAL VOC "void" border pixels excluded.  This crate
//! reimplements that metric (plus the usual companions: pixel accuracy,
//! precision/recall/F1, Dice) natively so the evaluation pipeline is fully
//! self-contained.

pub mod confusion;
pub mod iou;

pub use confusion::BinaryConfusion;
pub use iou::{dice, iou_binary, mean_iou, miou_fg_bg, pixel_accuracy, MiouBreakdown};
