//! `metrics` — segmentation evaluation metrics.
//!
//! The paper scores every method with the foreground/background mean
//! intersection-over-union (its eqs. 18–19), computed with TensorFlow's
//! `MeanIoU` and with PASCAL VOC "void" border pixels excluded.  This crate
//! reimplements that metric (plus the usual companions: pixel accuracy,
//! precision/recall/F1, Dice) natively so the evaluation pipeline is fully
//! self-contained.
//!
//! # Example
//!
//! ```
//! use imaging::LabelMap;
//! use metrics::{mean_iou, miou_fg_bg};
//!
//! let prediction = LabelMap::from_vec(4, 1, vec![1, 1, 0, 0]).unwrap();
//! let truth = LabelMap::from_vec(4, 1, vec![1, 0, 0, 0]).unwrap();
//! let breakdown = miou_fg_bg(&prediction, &truth);
//! assert!((breakdown.foreground - 0.5).abs() < 1e-12); // TP=1, FP=1, FN=0
//! assert_eq!(mean_iou(&prediction, &truth), breakdown.miou);
//! ```

pub mod confusion;
pub mod iou;

pub use confusion::BinaryConfusion;
pub use iou::{dice, iou_binary, mean_iou, miou_fg_bg, pixel_accuracy, MiouBreakdown};
