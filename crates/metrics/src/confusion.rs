//! Binary confusion matrices over label maps.

use imaging::{LabelMap, VOID_LABEL};

/// Confusion counts for a binary (foreground = 1 / background = 0) problem.
///
/// Void pixels in the ground truth are excluded, matching the PASCAL VOC
/// evaluation protocol the paper follows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// Prediction 1, truth 1.
    pub tp: u64,
    /// Prediction 1, truth 0.
    pub fp: u64,
    /// Prediction 0, truth 1.
    pub fn_: u64,
    /// Prediction 0, truth 0.
    pub tn: u64,
    /// Ground-truth void pixels that were skipped.
    pub void: u64,
}

impl BinaryConfusion {
    /// Builds the confusion matrix of `prediction` against `ground_truth`.
    ///
    /// Any non-zero, non-void label counts as foreground in either map, so
    /// multi-label inputs are implicitly binarised (callers normally binarise
    /// explicitly first via `iqft_seg::foreground`).
    ///
    /// # Panics
    ///
    /// Panics if the two maps have different dimensions.
    pub fn from_maps(prediction: &LabelMap, ground_truth: &LabelMap) -> Self {
        prediction
            .check_same_shape(ground_truth)
            .expect("prediction and ground truth must share dimensions");
        let mut c = Self::default();
        for (&p, &t) in prediction
            .as_slice()
            .iter()
            .zip(ground_truth.as_slice().iter())
        {
            if t == VOID_LABEL {
                c.void += 1;
                continue;
            }
            let p_fg = p != 0 && p != VOID_LABEL;
            let t_fg = t != 0;
            match (p_fg, t_fg) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Total number of evaluated (non-void) pixels.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Intersection over union of the foreground class:
    /// `TP / (TP + FP + FN)`; defined as 1 when the foreground is absent from
    /// both maps.
    pub fn iou_foreground(&self) -> f64 {
        let denom = self.tp + self.fp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Intersection over union of the background class:
    /// `TN / (TN + FP + FN)`; defined as 1 when the background is absent from
    /// both maps.
    pub fn iou_background(&self) -> f64 {
        let denom = self.tn + self.fp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tn as f64 / denom as f64
        }
    }

    /// Fraction of evaluated pixels predicted correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 1.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Foreground precision `TP / (TP + FP)`; 1 when nothing was predicted
    /// foreground.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Foreground recall `TP / (TP + FN)`; 1 when the ground truth has no
    /// foreground.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall); 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges counts from another confusion matrix (used for dataset-level
    /// aggregation).
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
        self.void += other.void;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_from(values: &[u32], width: usize) -> LabelMap {
        LabelMap::from_vec(width, values.len() / width, values.to_vec()).unwrap()
    }

    #[test]
    fn perfect_prediction() {
        let gt = map_from(&[0, 0, 1, 1], 2);
        let c = BinaryConfusion::from_maps(&gt, &gt);
        assert_eq!((c.tp, c.tn, c.fp, c.fn_), (2, 2, 0, 0));
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.iou_foreground(), 1.0);
        assert_eq!(c.iou_background(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn completely_wrong_prediction() {
        let gt = map_from(&[0, 0, 1, 1], 2);
        let pred = map_from(&[1, 1, 0, 0], 2);
        let c = BinaryConfusion::from_maps(&pred, &gt);
        assert_eq!((c.tp, c.tn, c.fp, c.fn_), (0, 0, 2, 2));
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.iou_foreground(), 0.0);
        assert_eq!(c.iou_background(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn partial_overlap_counts() {
        // gt fg: 3 pixels; pred fg: 2 of them + 1 false positive.
        let gt = map_from(&[1, 1, 1, 0, 0, 0], 3);
        let pred = map_from(&[1, 1, 0, 1, 0, 0], 3);
        let c = BinaryConfusion::from_maps(&pred, &gt);
        assert_eq!((c.tp, c.fp, c.fn_, c.tn), (2, 1, 1, 2));
        assert!((c.iou_foreground() - 0.5).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn void_pixels_are_excluded() {
        let gt = map_from(&[VOID_LABEL, 1, 0, VOID_LABEL], 2);
        let pred = map_from(&[0, 1, 0, 1], 2);
        let c = BinaryConfusion::from_maps(&pred, &gt);
        assert_eq!(c.void, 2);
        assert_eq!(c.total(), 2);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn multi_label_prediction_is_binarised() {
        let gt = map_from(&[0, 1, 1, 0], 2);
        let pred = map_from(&[0, 5, 7, 0], 2); // any non-zero label is fg
        let c = BinaryConfusion::from_maps(&pred, &gt);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn degenerate_classes_default_to_one() {
        let gt = map_from(&[0, 0, 0, 0], 2);
        let pred = map_from(&[0, 0, 0, 0], 2);
        let c = BinaryConfusion::from_maps(&pred, &gt);
        assert_eq!(c.iou_foreground(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        let all_fg = map_from(&[1, 1, 1, 1], 2);
        let c = BinaryConfusion::from_maps(&all_fg, &all_fg);
        assert_eq!(c.iou_background(), 1.0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let gt = map_from(&[0, 1], 2);
        let pred = map_from(&[1, 1], 2);
        let mut a = BinaryConfusion::from_maps(&pred, &gt);
        let b = BinaryConfusion::from_maps(&gt, &gt);
        a.merge(&b);
        assert_eq!(a.tp, 2);
        assert_eq!(a.fp, 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn shape_mismatch_panics() {
        let a = LabelMap::new(2, 2, 0);
        let b = LabelMap::new(3, 2, 0);
        let _ = BinaryConfusion::from_maps(&a, &b);
    }
}
