//! Intersection-over-union metrics (the paper's eqs. 18–19).

use crate::confusion::BinaryConfusion;
use imaging::LabelMap;

/// Per-class breakdown of the foreground/background mIOU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiouBreakdown {
    /// IOU of the foreground class.
    pub foreground: f64,
    /// IOU of the background class.
    pub background: f64,
    /// Mean of the two (eq. 18).
    pub miou: f64,
    /// Pixel accuracy over non-void pixels.
    pub accuracy: f64,
}

/// Foreground IOU of a binary prediction against a binary ground truth
/// (eq. 19), void pixels excluded.
pub fn iou_binary(prediction: &LabelMap, ground_truth: &LabelMap) -> f64 {
    BinaryConfusion::from_maps(prediction, ground_truth).iou_foreground()
}

/// Dice coefficient (`2·TP / (2·TP + FP + FN)`) of the foreground class.
pub fn dice(prediction: &LabelMap, ground_truth: &LabelMap) -> f64 {
    let c = BinaryConfusion::from_maps(prediction, ground_truth);
    let denom = 2 * c.tp + c.fp + c.fn_;
    if denom == 0 {
        1.0
    } else {
        2.0 * c.tp as f64 / denom as f64
    }
}

/// Pixel accuracy over non-void pixels.
pub fn pixel_accuracy(prediction: &LabelMap, ground_truth: &LabelMap) -> f64 {
    BinaryConfusion::from_maps(prediction, ground_truth).accuracy()
}

/// The paper's eq. 18: the mean of the foreground IOU and the background IOU,
/// with ground-truth void pixels excluded.  Also returns the per-class values
/// and pixel accuracy.
pub fn miou_fg_bg(prediction: &LabelMap, ground_truth: &LabelMap) -> MiouBreakdown {
    let c = BinaryConfusion::from_maps(prediction, ground_truth);
    let foreground = c.iou_foreground();
    let background = c.iou_background();
    MiouBreakdown {
        foreground,
        background,
        miou: (foreground + background) / 2.0,
        accuracy: c.accuracy(),
    }
}

/// Convenience scalar form of [`miou_fg_bg`].
pub fn mean_iou(prediction: &LabelMap, ground_truth: &LabelMap) -> f64 {
    miou_fg_bg(prediction, ground_truth).miou
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::VOID_LABEL;

    fn map_from(values: &[u32], width: usize) -> LabelMap {
        LabelMap::from_vec(width, values.len() / width, values.to_vec()).unwrap()
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let gt = map_from(&[0, 1, 1, 0, 0, 1], 3);
        let b = miou_fg_bg(&gt, &gt);
        assert_eq!(b.miou, 1.0);
        assert_eq!(b.foreground, 1.0);
        assert_eq!(b.background, 1.0);
        assert_eq!(b.accuracy, 1.0);
        assert_eq!(mean_iou(&gt, &gt), 1.0);
        assert_eq!(dice(&gt, &gt), 1.0);
    }

    #[test]
    fn inverted_prediction_scores_zero() {
        let gt = map_from(&[0, 0, 1, 1], 2);
        let pred = map_from(&[1, 1, 0, 0], 2);
        let b = miou_fg_bg(&pred, &gt);
        assert_eq!(b.miou, 0.0);
        assert_eq!(pixel_accuracy(&pred, &gt), 0.0);
        assert_eq!(dice(&pred, &gt), 0.0);
    }

    #[test]
    fn half_overlap_example_matches_hand_computation() {
        // gt foreground = left half (4 px of 8), prediction covers the top
        // row (2 correct fg, 2 fp; misses 2 fg).
        let gt = map_from(&[1, 1, 0, 0, 1, 1, 0, 0], 4);
        let pred = map_from(&[1, 1, 1, 1, 0, 0, 0, 0], 4);
        // TP=2, FP=2, FN=2, TN=2 → IOU_fg = 2/6, IOU_bg = 2/6, mIOU = 1/3.
        let b = miou_fg_bg(&pred, &gt);
        assert!((b.foreground - 1.0 / 3.0).abs() < 1e-12);
        assert!((b.background - 1.0 / 3.0).abs() < 1e-12);
        assert!((b.miou - 1.0 / 3.0).abs() < 1e-12);
        assert!((b.accuracy - 0.5).abs() < 1e-12);
        assert!((dice(&pred, &gt) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn miou_is_symmetric_in_prediction_and_truth_for_binary_maps() {
        let a = map_from(&[1, 0, 1, 0, 1, 1], 3);
        let b = map_from(&[1, 1, 0, 0, 1, 0], 3);
        assert!((mean_iou(&a, &b) - mean_iou(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn void_pixels_do_not_affect_the_score() {
        let gt = map_from(&[1, 1, 0, 0], 2);
        let pred = map_from(&[1, 1, 0, 0], 2);
        let mut gt_with_void = gt.clone();
        gt_with_void.set(0, 1, VOID_LABEL);
        let mut wrong_under_void = pred.clone();
        wrong_under_void.set(0, 1, 1); // wrong, but under a void pixel
        assert_eq!(mean_iou(&wrong_under_void, &gt_with_void), 1.0);
        // Without the void mask the same prediction is penalised.
        assert!(mean_iou(&wrong_under_void, &gt) < 1.0);
    }

    #[test]
    fn label_swap_gives_complementary_quality() {
        // An unsupervised segmenter may emit the "right" partition with the
        // labels swapped; mIOU then collapses, which is why the foreground
        // reduction step matters.  Verify both directions behave as expected.
        let gt = map_from(&[0, 0, 0, 1, 1, 1], 3);
        let swapped = map_from(&[1, 1, 1, 0, 0, 0], 3);
        assert_eq!(mean_iou(&swapped, &gt), 0.0);
        assert_eq!(mean_iou(&gt, &gt), 1.0);
    }

    #[test]
    fn all_background_prediction_on_mixed_truth() {
        let gt = map_from(&[1, 0, 0, 0], 2);
        let pred = map_from(&[0, 0, 0, 0], 2);
        let b = miou_fg_bg(&pred, &gt);
        assert_eq!(b.foreground, 0.0);
        assert!((b.background - 0.75).abs() < 1e-12);
        assert!((b.miou - 0.375).abs() < 1e-12);
    }

    #[test]
    fn dice_exceeds_iou_for_partial_overlap() {
        let gt = map_from(&[1, 1, 1, 0, 0, 0], 3);
        let pred = map_from(&[1, 1, 0, 1, 0, 0], 3);
        let iou = iou_binary(&pred, &gt);
        let d = dice(&pred, &gt);
        assert!(d > iou);
        assert!((iou - 0.5).abs() < 1e-12);
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
    }
}
