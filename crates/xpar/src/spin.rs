//! A minimal test-and-set spin lock.
//!
//! Used for very short critical sections (e.g. merging per-chunk label
//! histograms) where the cost of parking a thread would dominate.  The
//! implementation follows the classic acquire/release pattern: `lock` spins on
//! a `compare_exchange_weak` with `Acquire` ordering, `unlock` stores `false`
//! with `Release` ordering, which establishes the happens-before edge between
//! the unlocking thread's writes and the next locking thread's reads.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A spin lock protecting a value of type `T`.
///
/// Prefer [`parking_lot::Mutex`] for anything that may hold the lock for more
/// than a few hundred nanoseconds; this type exists for the hot merge paths in
/// the segmentation kernels and for the workspace's concurrency tests.
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock guarantees exclusive access to `value` while a guard is
// alive, so sharing the lock across threads is sound as long as `T: Send`.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard returned by [`SpinLock::lock`]; releases the lock on drop.
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Creates a new unlocked spin lock wrapping `value`.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning until it becomes available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Back off while the lock is held to avoid hammering the cache line.
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
        SpinGuard { lock: self }
    }

    /// Attempts to acquire the lock without spinning.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Returns a mutable reference to the inner value.
    ///
    /// Requires `&mut self`, so no locking is necessary.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for SpinLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves the lock is held.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves the lock is held exclusively.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_lock_unlock() {
        let lock = SpinLock::new(5usize);
        {
            let mut g = lock.lock();
            *g += 1;
        }
        assert_eq!(*lock.lock(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = SpinLock::new(String::from("hello"));
        assert_eq!(lock.into_inner(), "hello");
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = SpinLock::new(3);
        *lock.get_mut() = 9;
        assert_eq!(*lock.lock(), 9);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let lock = Arc::new(SpinLock::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    *lock.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn default_constructs_default_value() {
        let lock: SpinLock<u32> = SpinLock::default();
        assert_eq!(*lock.lock(), 0);
    }
}
