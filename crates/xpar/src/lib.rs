//! `xpar` — a lightweight parallel-execution substrate.
//!
//! The reproduced paper's algorithm is embarrassingly parallel over pixels, and
//! the evaluation harness is embarrassingly parallel over images.  This crate
//! provides the small set of primitives the rest of the workspace needs to
//! exploit that parallelism without pulling heavyweight dependencies into the
//! core algorithm crates:
//!
//! * [`ThreadPool`] — a fixed-size pool of worker threads fed through a
//!   crossbeam channel, with panic propagation and graceful shutdown.
//! * [`par_map_chunks`] / [`par_for_each_chunk_mut`] — scoped, chunk-based
//!   data-parallel helpers built directly on `std::thread::scope`, so borrowed
//!   data can be used without `'static` bounds.
//! * [`Backend`] — a runtime-selectable execution policy (serial, scoped
//!   threads, or Rayon when the `rayon-backend` feature is enabled) used by the
//!   higher-level crates to expose a single `backend` knob.
//! * [`progress::Progress`] — an atomic progress counter for long sweeps.
//! * [`spin::SpinLock`] — a minimal test-and-set spin lock used in hot,
//!   short-critical-section paths (and as a teaching artefact from the
//!   Atomics-and-Locks material the workspace follows).
//!
//! All of the public API is safe; there is no `unsafe` in this crate except the
//! `Sync` plumbing inside [`spin`], which is documented at the definition site.
//!
//! # Example
//!
//! ```
//! use xpar::Backend;
//!
//! let serial = Backend::Serial.map_indexed(8, |i| i * i);
//! let threaded = Backend::Threads(2).map_indexed(8, |i| i * i);
//! assert_eq!(serial, threaded); // scheduling never changes results
//! ```

pub mod backend;
pub mod par;
pub mod pool;
pub mod progress;
pub mod spin;

pub use backend::Backend;
pub use par::{par_chunk_count, par_for_each_chunk_mut, par_map_chunks, par_map_indexed};
pub use pool::ThreadPool;
pub use progress::Progress;
pub use spin::SpinLock;

/// Returns the number of worker threads a default parallel run should use.
///
/// This is `std::thread::available_parallelism()` clamped to at least 1; the
/// value is re-queried on every call so tests can exercise it cheaply.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
