//! Atomic progress reporting for long-running sweeps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A cheap, thread-safe progress counter.
///
/// Workers call [`Progress::inc`] (relaxed ordering — counts never synchronise
/// other data), observers call [`Progress::done`] / [`Progress::fraction`].
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    started: Instant,
}

impl Progress {
    /// Creates a progress tracker expecting `total` units of work.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Records `n` completed units and returns the new completed count.
    pub fn inc(&self, n: usize) -> usize {
        self.done.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Number of completed units.
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Total number of units this tracker expects.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Completed fraction in `[0, 1]`; returns 1.0 for an empty workload.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.done() as f64 / self.total as f64).min(1.0)
        }
    }

    /// Seconds elapsed since the tracker was created.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// True once at least `total` units have been recorded.
    pub fn is_complete(&self) -> bool {
        self.done() >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_workload_is_complete() {
        let p = Progress::new(0);
        assert!(p.is_complete());
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn increments_accumulate() {
        let p = Progress::new(10);
        assert_eq!(p.inc(3), 3);
        assert_eq!(p.inc(2), 5);
        assert_eq!(p.done(), 5);
        assert!((p.fraction() - 0.5).abs() < 1e-12);
        assert!(!p.is_complete());
        p.inc(5);
        assert!(p.is_complete());
    }

    #[test]
    fn fraction_is_clamped_to_one() {
        let p = Progress::new(4);
        p.inc(100);
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn concurrent_increments_sum_correctly() {
        let p = Arc::new(Progress::new(8 * 1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    p.inc(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.done(), 8000);
        assert!(p.is_complete());
        assert!(p.elapsed_secs() >= 0.0);
    }
}
