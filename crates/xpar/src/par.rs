//! Scoped, chunk-based data-parallel helpers.
//!
//! These helpers use `std::thread::scope`, so closures may borrow from the
//! caller's stack (no `'static` bound), which keeps the call sites in the
//! imaging and segmentation crates free of `Arc` plumbing.
//!
//! Concurrency is **bounded**: each helper spawns at most `threads` worker
//! threads, which pull chunks from a shared queue until it drains.  `threads`
//! therefore means what it says — `Backend::Threads(2)` runs at most two
//! workers, whatever the chunk count — which is what the parallel-scaling
//! ablation sweeps over.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of chunks a workload of `len` items should be split into when run on
/// `threads` workers.
///
/// A small oversubscription factor (4× more chunks than workers) keeps the
/// workers busy when chunks have uneven cost (e.g. rows of an image with
/// differing content); the worker count itself stays at `threads`.
pub fn par_chunk_count(len: usize, threads: usize) -> usize {
    if len == 0 {
        return 1;
    }
    (threads.max(1) * 4).min(len)
}

/// Splits `0..len` into `chunks` contiguous ranges of near-equal size.
fn split_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `per_chunk` over every index of `chunks` on at most `threads` scoped
/// workers and returns the per-chunk results in chunk order.
///
/// Workers claim chunk indices from a shared atomic counter, so a slow chunk
/// never blocks the others and the worker count stays exactly bounded.
fn run_chunked<R, F>(chunk_count: usize, threads: usize, per_chunk: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(chunk_count).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(chunk_count, || None);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(chunk_count));
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let results = &results;
            let per_chunk = &per_chunk;
            handles.push(scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= chunk_count {
                    break;
                }
                let r = per_chunk(idx);
                results.lock().push((idx, r));
            }));
        }
        for handle in handles {
            handle.join().expect("parallel chunk worker panicked");
        }
    });
    for (idx, r) in results.into_inner() {
        slots[idx] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("chunk result missing"))
        .collect()
}

/// Applies `f` to every index in `0..len` in parallel and collects the results
/// in index order.
///
/// `threads == 0` or `threads == 1` runs serially on the calling thread; at
/// most `threads` workers run otherwise.
pub fn par_map_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let ranges = split_ranges(len, par_chunk_count(len, threads));
    let pieces = run_chunked(ranges.len(), threads, |idx| {
        ranges[idx].clone().map(&f).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(len);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// Maps `f` over contiguous chunks of `items`, in parallel, preserving order.
///
/// Each invocation of `f` receives the chunk's starting index and the chunk
/// slice, and returns one result per chunk.  At most `threads` workers run.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![f(0, items)];
    }
    let ranges = split_ranges(items.len(), par_chunk_count(items.len(), threads));
    run_chunked(ranges.len(), threads, |idx| {
        let range = ranges[idx].clone();
        f(range.start, &items[range])
    })
}

/// Runs `f` over disjoint mutable chunks of `items` in parallel.
///
/// `f` receives the starting index of the chunk and the mutable chunk slice.
/// Chunk boundaries are chosen internally; callers must not rely on a
/// particular chunk size, only on every element being visited exactly once.
/// At most `threads` workers run.
pub fn par_for_each_chunk_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    if threads <= 1 {
        f(0, items);
        return;
    }
    let len = items.len();
    let ranges = split_ranges(len, par_chunk_count(len, threads));
    // Pre-split the buffer into disjoint mutable chunks, then let a bounded
    // set of workers drain them from a shared queue.
    let mut chunks: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
    let mut rest = items;
    let mut consumed = 0usize;
    for range in ranges {
        let size = range.len();
        let (chunk, tail) = rest.split_at_mut(size);
        rest = tail;
        chunks.push((consumed, chunk));
        consumed += size;
    }
    let workers = threads.min(chunks.len()).max(1);
    let queue = Mutex::new(chunks);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let f = &f;
            scope.spawn(move || {
                while let Some((start, chunk)) = queue.lock().pop() {
                    f(start, chunk);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 101] {
            for chunks in [1usize, 2, 3, 8, 50] {
                let ranges = split_ranges(len, chunks);
                let mut seen = vec![false; len];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!seen[i], "index {i} visited twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.into_iter().all(|s| s), "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn par_map_indexed_matches_serial() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 8] {
            let par = par_map_indexed(1000, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_empty_and_single() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_chunks_sums_match() {
        let data: Vec<u64> = (0..10_000).collect();
        let expected: u64 = data.iter().sum();
        for threads in [1usize, 3, 8] {
            let partials = par_map_chunks(&data, threads, |_, chunk| chunk.iter().sum::<u64>());
            let total: u64 = partials.iter().sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn par_map_chunks_start_indices_are_correct() {
        let data: Vec<usize> = (0..257).collect();
        let starts = par_map_chunks(&data, 4, |start, chunk| (start, chunk[0]));
        for (start, first) in starts {
            assert_eq!(start, first);
        }
    }

    #[test]
    fn par_for_each_chunk_mut_touches_every_element() {
        let mut data = vec![0i64; 4096];
        par_for_each_chunk_mut(&mut data, 8, |start, chunk| {
            for (offset, v) in chunk.iter_mut().enumerate() {
                *v = (start + offset) as i64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as i64);
        }
    }

    #[test]
    fn par_for_each_chunk_mut_serial_path() {
        let mut data = vec![1u32; 17];
        par_for_each_chunk_mut(&mut data, 1, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn chunk_count_bounds() {
        assert_eq!(par_chunk_count(0, 8), 1);
        assert!(par_chunk_count(3, 8) <= 3);
        assert!(par_chunk_count(1_000_000, 8) >= 8);
    }

    /// The `threads` argument bounds concurrency: even with many chunks in
    /// flight, no more than `threads` invocations of the closure overlap.
    #[test]
    fn worker_concurrency_is_bounded_by_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [2usize, 3] {
            let active = AtomicUsize::new(0);
            let peak = AtomicUsize::new(0);
            let mut data = vec![0u8; 64];
            par_for_each_chunk_mut(&mut data, threads, |_, chunk| {
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                for v in chunk.iter_mut() {
                    *v = 1;
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
            assert!(data.iter().all(|&v| v == 1));
            assert!(
                peak.load(Ordering::SeqCst) <= threads,
                "peak {} > threads {threads}",
                peak.load(Ordering::SeqCst)
            );

            let peak_map = AtomicUsize::new(0);
            let active_map = AtomicUsize::new(0);
            let out = par_map_indexed(64, threads, |i| {
                let now = active_map.fetch_add(1, Ordering::SeqCst) + 1;
                peak_map.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                active_map.fetch_sub(1, Ordering::SeqCst);
                i
            });
            assert_eq!(out, (0..64).collect::<Vec<_>>());
            assert!(peak_map.load(Ordering::SeqCst) <= threads);
        }
    }
}
