//! Scoped, chunk-based data-parallel helpers.
//!
//! These helpers use `std::thread::scope`, so closures may borrow from the
//! caller's stack (no `'static` bound), which keeps the call sites in the
//! imaging and segmentation crates free of `Arc` plumbing.

/// Number of chunks a workload of `len` items should be split into when run on
/// `threads` workers.
///
/// A small oversubscription factor (4×) keeps the workers busy when chunks have
/// uneven cost (e.g. rows of an image with differing content).
pub fn par_chunk_count(len: usize, threads: usize) -> usize {
    if len == 0 {
        return 1;
    }
    (threads.max(1) * 4).min(len)
}

/// Splits `0..len` into `chunks` contiguous ranges of near-equal size.
fn split_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let chunks = chunks.max(1).min(len.max(1));
    let base = len / chunks;
    let rem = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Applies `f` to every index in `0..len` in parallel and collects the results
/// in index order.
///
/// `threads == 0` or `threads == 1` runs serially on the calling thread.
pub fn par_map_indexed<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let ranges = split_ranges(len, par_chunk_count(len, threads));
    let mut pieces: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let f = &f;
            handles.push(scope.spawn(move || range.map(f).collect::<Vec<T>>()));
        }
        for handle in handles {
            pieces.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(len);
    for piece in pieces {
        out.extend(piece);
    }
    out
}

/// Maps `f` over contiguous chunks of `items`, in parallel, preserving order.
///
/// Each invocation of `f` receives the chunk's starting index and the chunk
/// slice, and returns one result per chunk.
pub fn par_map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 {
        return vec![f(0, items)];
    }
    let ranges = split_ranges(items.len(), par_chunk_count(items.len(), threads));
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for (chunk_idx, range) in ranges.into_iter().enumerate() {
            let f = &f;
            let slice = &items[range.clone()];
            let start = range.start;
            handles.push((chunk_idx, scope.spawn(move || f(start, slice))));
        }
        for (chunk_idx, handle) in handles {
            out[chunk_idx] = Some(handle.join().expect("parallel chunk worker panicked"));
        }
    });
    out.into_iter().map(|r| r.expect("chunk result missing")).collect()
}

/// Runs `f` over disjoint mutable chunks of `items` in parallel.
///
/// `f` receives the starting index of the chunk and the mutable chunk slice.
/// Chunk boundaries are chosen internally; callers must not rely on a
/// particular chunk size, only on every element being visited exactly once.
pub fn par_for_each_chunk_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    if threads <= 1 {
        f(0, items);
        return;
    }
    let len = items.len();
    let ranges = split_ranges(len, par_chunk_count(len, threads));
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut consumed = 0usize;
        for range in ranges {
            let size = range.len();
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            let f = &f;
            let start = consumed;
            consumed += size;
            scope.spawn(move || f(start, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_everything_exactly_once() {
        for len in [0usize, 1, 2, 7, 16, 101] {
            for chunks in [1usize, 2, 3, 8, 50] {
                let ranges = split_ranges(len, chunks);
                let mut seen = vec![false; len];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!seen[i], "index {i} visited twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.into_iter().all(|s| s), "len={len} chunks={chunks}");
            }
        }
    }

    #[test]
    fn par_map_indexed_matches_serial() {
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 8] {
            let par = par_map_indexed(1000, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_empty_and_single() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_map_chunks_sums_match() {
        let data: Vec<u64> = (0..10_000).collect();
        let expected: u64 = data.iter().sum();
        for threads in [1usize, 3, 8] {
            let partials = par_map_chunks(&data, threads, |_, chunk| chunk.iter().sum::<u64>());
            let total: u64 = partials.iter().sum();
            assert_eq!(total, expected);
        }
    }

    #[test]
    fn par_map_chunks_start_indices_are_correct() {
        let data: Vec<usize> = (0..257).collect();
        let starts = par_map_chunks(&data, 4, |start, chunk| (start, chunk[0]));
        for (start, first) in starts {
            assert_eq!(start, first);
        }
    }

    #[test]
    fn par_for_each_chunk_mut_touches_every_element() {
        let mut data = vec![0i64; 4096];
        par_for_each_chunk_mut(&mut data, 8, |start, chunk| {
            for (offset, v) in chunk.iter_mut().enumerate() {
                *v = (start + offset) as i64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as i64);
        }
    }

    #[test]
    fn par_for_each_chunk_mut_serial_path() {
        let mut data = vec![1u32; 17];
        par_for_each_chunk_mut(&mut data, 1, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn chunk_count_bounds() {
        assert_eq!(par_chunk_count(0, 8), 1);
        assert!(par_chunk_count(3, 8) <= 3);
        assert!(par_chunk_count(1_000_000, 8) >= 8);
    }
}
