//! A fixed-size thread pool fed through a crossbeam channel.
//!
//! The pool is deliberately simple: jobs are boxed `FnOnce` closures, workers
//! pull from a shared MPMC channel, and dropping the pool joins every worker.
//! Panics inside a job are caught and surfaced when [`ThreadPool::join`] is
//! called, so a failing job cannot silently disappear.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    pending: Arc<AtomicUsize>,
    panics: Arc<Mutex<Vec<String>>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver): (Sender<Job>, Receiver<Job>) = unbounded();
        let pending = Arc::new(AtomicUsize::new(0));
        let panics = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::with_capacity(threads);
        for idx in 0..threads {
            let receiver = receiver.clone();
            let pending = Arc::clone(&pending);
            let panics = Arc::clone(&panics);
            let handle = std::thread::Builder::new()
                .name(format!("xpar-worker-{idx}"))
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        if let Err(payload) = result {
                            let msg = payload_to_string(&payload);
                            panics.lock().push(msg);
                        }
                        pending.fetch_sub(1, Ordering::AcqRel);
                    }
                })
                .expect("failed to spawn xpar worker thread");
            workers.push(handle);
        }
        Self {
            sender: Some(sender),
            workers,
            pending,
            panics,
        }
    }

    /// Creates a pool sized to [`crate::default_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("thread pool already shut down")
            .send(Box::new(job))
            .expect("worker threads terminated unexpectedly");
    }

    /// Blocks until every submitted job has finished.
    ///
    /// Returns an `Err` carrying the panic messages if any job panicked since
    /// the last call to `join`.
    pub fn join(&self) -> Result<(), Vec<String>> {
        while self.pending.load(Ordering::Acquire) > 0 {
            std::thread::yield_now();
        }
        let mut panics = self.panics.lock();
        if panics.is_empty() {
            Ok(())
        } else {
            Err(std::mem::take(&mut *panics))
        }
    }

    /// Number of jobs submitted but not yet completed.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn payload_to_string(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn thread_count_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(7, Ordering::Relaxed);
        });
        pool.join().unwrap();
        assert_eq!(done.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn panics_are_reported_on_join() {
        let pool = ThreadPool::new(2);
        pool.execute(|| panic!("boom"));
        pool.execute(|| {});
        let err = pool.join().unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("boom"));
        // Subsequent joins succeed because the panic list was drained.
        pool.join().unwrap();
    }

    #[test]
    fn default_sized_pool_works() {
        let pool = ThreadPool::with_default_threads();
        assert!(pool.threads() >= 1);
        let flag = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&flag);
        pool.execute(move || {
            f.store(1, Ordering::Relaxed);
        });
        pool.join().unwrap();
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn jobs_submitted_after_join_still_run() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join().unwrap();
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }
}
