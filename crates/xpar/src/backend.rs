//! Runtime-selectable execution policy.
//!
//! Higher-level crates expose a single `Backend` knob so that every algorithm
//! (pixel classification, K-means assignment, dataset sweeps) can be run
//! serially, with the scoped-thread substrate, or with Rayon, without changing
//! call sites.  This is also what the parallel-scaling ablation benchmark
//! sweeps over.

/// Execution policy for data-parallel loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Run on the calling thread.
    Serial,
    /// Use the scoped-thread helpers in [`crate::par`] with the given number of
    /// worker threads (0 means "use [`crate::default_threads`]").
    Threads(usize),
    /// Use Rayon's global pool (only available with the `rayon-backend`
    /// feature; falls back to `Threads(0)` otherwise).
    Rayon,
}

impl Default for Backend {
    fn default() -> Self {
        #[cfg(feature = "rayon-backend")]
        {
            Backend::Rayon
        }
        #[cfg(not(feature = "rayon-backend"))]
        {
            Backend::Threads(0)
        }
    }
}

impl Backend {
    /// Effective worker-thread count for this backend.
    pub fn effective_threads(self) -> usize {
        match self {
            Backend::Serial => 1,
            Backend::Threads(0) => crate::default_threads(),
            Backend::Threads(n) => n,
            Backend::Rayon => {
                #[cfg(feature = "rayon-backend")]
                {
                    rayon::current_num_threads()
                }
                #[cfg(not(feature = "rayon-backend"))]
                {
                    crate::default_threads()
                }
            }
        }
    }

    /// Maps `f` over `0..len`, collecting results in index order, using this
    /// backend's execution policy.
    pub fn map_indexed<T, F>(self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync + Send,
    {
        match self {
            Backend::Serial => (0..len).map(f).collect(),
            Backend::Threads(_) => crate::par::par_map_indexed(len, self.effective_threads(), f),
            Backend::Rayon => {
                #[cfg(feature = "rayon-backend")]
                {
                    use rayon::prelude::*;
                    (0..len).into_par_iter().map(f).collect()
                }
                #[cfg(not(feature = "rayon-backend"))]
                {
                    crate::par::par_map_indexed(len, self.effective_threads(), f)
                }
            }
        }
    }

    /// Runs `f` over disjoint mutable chunks of `items` using this backend.
    pub fn for_each_chunk_mut<T, F>(self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync + Send,
    {
        if items.is_empty() {
            return;
        }
        match self {
            Backend::Serial => f(0, items),
            Backend::Threads(_) => {
                crate::par::par_for_each_chunk_mut(items, self.effective_threads(), f)
            }
            Backend::Rayon => {
                #[cfg(feature = "rayon-backend")]
                {
                    use rayon::prelude::*;
                    if items.is_empty() {
                        return;
                    }
                    let chunk = (items.len() / (rayon::current_num_threads() * 4).max(1)).max(1);
                    items
                        .par_chunks_mut(chunk)
                        .enumerate()
                        .for_each(|(idx, slice)| f(idx * chunk, slice));
                }
                #[cfg(not(feature = "rayon-backend"))]
                {
                    crate::par::par_for_each_chunk_mut(items, self.effective_threads(), f)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_backends() -> Vec<Backend> {
        vec![
            Backend::Serial,
            Backend::Threads(1),
            Backend::Threads(3),
            Backend::Threads(0),
            Backend::Rayon,
        ]
    }

    #[test]
    fn map_indexed_is_backend_independent() {
        let expected: Vec<usize> = (0..500).map(|i| i * 3 + 1).collect();
        for backend in all_backends() {
            let got = backend.map_indexed(500, |i| i * 3 + 1);
            assert_eq!(got, expected, "backend {backend:?}");
        }
    }

    #[test]
    fn for_each_chunk_mut_visits_all_elements_once() {
        for backend in all_backends() {
            let mut data = vec![0u32; 1234];
            backend.for_each_chunk_mut(&mut data, |start, chunk| {
                for (offset, v) in chunk.iter_mut().enumerate() {
                    *v = (start + offset) as u32 + 1;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u32 + 1, "backend {backend:?}");
            }
        }
    }

    #[test]
    fn effective_threads_is_positive() {
        for backend in all_backends() {
            assert!(backend.effective_threads() >= 1, "backend {backend:?}");
        }
        assert_eq!(Backend::Serial.effective_threads(), 1);
        assert_eq!(Backend::Threads(5).effective_threads(), 5);
    }

    #[test]
    fn empty_workloads_are_handled() {
        for backend in all_backends() {
            assert!(backend.map_indexed(0, |i| i).is_empty());
            let mut empty: Vec<u8> = Vec::new();
            backend.for_each_chunk_mut(&mut empty, |_, _| panic!("should not be called"));
        }
    }
}
