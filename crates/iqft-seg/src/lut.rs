//! Lookup-table accelerated RGB segmentation.
//!
//! The label produced by Algorithm 1 depends only on the pixel's colour, so a
//! real image — which typically contains far fewer distinct colours than
//! pixels — can be segmented by classifying each *distinct* colour once and
//! reusing the answer.  This module wraps [`IqftRgbSegmenter`] with such a
//! memoisation layer; the output is bit-for-bit identical to the direct
//! segmenter (this is asserted by tests and measured by the `ablation_lut`
//! benchmark).

use crate::rgb::IqftRgbSegmenter;
use imaging::{LabelMap, PixelClassifier, Rgb, RgbImage, Segmenter};
use parking_lot::RwLock;
use std::collections::HashMap;

/// A memoising wrapper around [`IqftRgbSegmenter`].
///
/// The cache persists across calls, so segmenting many frames of similar
/// content (e.g. video, or a dataset of satellite tiles with a common
/// palette) amortises classification work across images.
#[derive(Debug)]
pub struct LutRgbSegmenter {
    inner: IqftRgbSegmenter,
    cache: RwLock<HashMap<[u8; 3], u32>>,
}

impl LutRgbSegmenter {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: IqftRgbSegmenter) -> Self {
        Self {
            inner,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The paper's headline configuration with memoisation.
    pub fn paper_default() -> Self {
        Self::new(IqftRgbSegmenter::paper_default())
    }

    /// Access to the wrapped segmenter.
    pub fn inner(&self) -> &IqftRgbSegmenter {
        &self.inner
    }

    /// Selects the execution backend for whole-image segmentation.
    pub fn with_backend(mut self, backend: xpar::Backend) -> Self {
        self.inner = self.inner.with_backend(backend);
        self
    }

    /// Routes whole-image segmentation through `engine`.
    pub fn with_engine(mut self, engine: seg_engine::SegmentEngine) -> Self {
        self.inner = self.inner.with_engine(engine);
        self
    }

    /// Number of distinct colours currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Clears the memoisation cache.
    pub fn clear_cache(&self) {
        self.cache.write().clear();
    }

    /// Upgrades the lazy per-colour cache into an *eager*
    /// [`PhaseTable`](crate::phase_table::PhaseTable) covering every channel
    /// value up front — the steady-state fast path the throughput pipeline
    /// uses.  The table classifies byte-identically to this segmenter (both
    /// reduce to the wrapped [`IqftRgbSegmenter`]'s exact rule) but has no
    /// warm-up cost and no lock traffic.
    pub fn precompute(&self) -> crate::phase_table::PhaseTable {
        crate::phase_table::PhaseTable::from_segmenter(&self.inner)
    }

    /// Classifies every pixel of a zero-copy sub-image view into a matching
    /// label view, consulting (and warming) the colour cache — the tile work
    /// unit consumed by `SegmentEngine::segment_tiled`.  Labels are
    /// identical to per-pixel [`LutRgbSegmenter::classify`] calls.
    pub fn classify_view_into(
        &self,
        view: &imaging::ImageView<'_, Rgb<u8>>,
        out: &mut imaging::LabelViewMut<'_>,
    ) {
        PixelClassifier::classify_rgb_view_into(self, view, out);
    }

    /// Classifies a pixel, consulting the cache first.
    pub fn classify(&self, pixel: Rgb<u8>) -> u32 {
        let key = pixel.0;
        if let Some(&label) = self.cache.read().get(&key) {
            return label;
        }
        let label = self.inner.classify(pixel);
        self.cache.write().insert(key, label);
        label
    }
}

impl PixelClassifier for LutRgbSegmenter {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(pixel)
    }
}

impl Segmenter for LutRgbSegmenter {
    fn name(&self) -> &str {
        "IQFT (RGB, LUT)"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        // Classify each distinct colour once, then map pixels through the
        // resulting table on the engine's parallel backend.  Working on the
        // distinct-colour set keeps the lock traffic negligible even for
        // large images; the table lookup itself is lock-free.
        let mut local: HashMap<[u8; 3], u32> = HashMap::new();
        {
            let cache = self.cache.read();
            for p in img.pixels() {
                if let Some(&l) = cache.get(&p.0) {
                    local.insert(p.0, l);
                }
            }
        }
        let mut new_entries: Vec<([u8; 3], u32)> = Vec::new();
        for p in img.pixels() {
            if let std::collections::hash_map::Entry::Vacant(slot) = local.entry(p.0) {
                let label = self.inner.classify(*p);
                slot.insert(label);
                new_entries.push((p.0, label));
            }
        }
        if !new_entries.is_empty() {
            let mut cache = self.cache.write();
            for (k, v) in new_entries {
                cache.insert(k, v);
            }
        }
        let table_lookup = |p: Rgb<u8>| local[&p.0];
        self.inner.engine().segment_rgb(&table_lookup, img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaParams;

    fn test_image() -> RgbImage {
        RgbImage::from_fn(40, 30, |x, y| {
            // Deliberately few distinct colours (4 quadrant colours + noise band).
            match (x < 20, y < 15) {
                (true, true) => Rgb::new(10, 20, 30),
                (false, true) => Rgb::new(200, 180, 40),
                (true, false) => Rgb::new(90, 140, 220),
                (false, false) => Rgb::new((x % 3 * 60) as u8, 250, 128),
            }
        })
    }

    #[test]
    fn lut_output_matches_direct_segmenter() {
        let direct = IqftRgbSegmenter::paper_default();
        let lut = LutRgbSegmenter::paper_default();
        let img = test_image();
        assert_eq!(lut.segment_rgb(&img), direct.segment_rgb(&img));
    }

    #[test]
    fn cache_is_populated_and_reused() {
        let lut = LutRgbSegmenter::paper_default();
        assert_eq!(lut.cache_len(), 0);
        let img = test_image();
        let first = lut.segment_rgb(&img);
        let cached_after_first = lut.cache_len();
        assert!(cached_after_first > 0);
        assert!(cached_after_first <= 7, "only distinct colours are cached");
        // A second pass reuses the cache and yields the same output.
        let second = lut.segment_rgb(&img);
        assert_eq!(first, second);
        assert_eq!(lut.cache_len(), cached_after_first);
        lut.clear_cache();
        assert_eq!(lut.cache_len(), 0);
    }

    #[test]
    fn classify_single_pixels_matches_inner() {
        let lut = LutRgbSegmenter::new(IqftRgbSegmenter::new(ThetaParams::uniform(2.0)));
        for pixel in [
            Rgb::new(0, 0, 0),
            Rgb::new(255, 10, 90),
            Rgb::new(128, 128, 128),
        ] {
            assert_eq!(lut.classify(pixel), lut.inner().classify(pixel));
            // Second lookup hits the cache and still agrees.
            assert_eq!(lut.classify(pixel), lut.inner().classify(pixel));
        }
        assert_eq!(lut.cache_len(), 3);
    }

    #[test]
    fn precomputed_table_agrees_with_lazy_cache() {
        let lut = LutRgbSegmenter::paper_default();
        let table = lut.precompute();
        let img = test_image();
        assert_eq!(table.segment_rgb(&img), lut.segment_rgb(&img));
        for pixel in [Rgb::new(0, 0, 0), Rgb::new(200, 180, 40)] {
            assert_eq!(table.classify(pixel), lut.classify(pixel));
        }
    }

    #[test]
    fn view_classification_matches_whole_image_and_warms_the_cache() {
        let lut = LutRgbSegmenter::paper_default();
        let img = test_image();
        let whole = lut.segment_rgb(&img);
        let fresh = LutRgbSegmenter::paper_default();
        let mut stitched = imaging::LabelMap::new(40, 30, u32::MAX);
        for rect in img.tile_rects(16, 11) {
            let tile = img.view(rect).unwrap();
            fresh.classify_view_into(&tile, &mut stitched.view_mut(rect).unwrap());
        }
        assert_eq!(stitched, whole);
        assert!(
            fresh.cache_len() > 0,
            "view path populates the colour cache"
        );
    }

    #[test]
    fn name_distinguishes_lut_variant() {
        assert_eq!(LutRgbSegmenter::paper_default().name(), "IQFT (RGB, LUT)");
    }
}
