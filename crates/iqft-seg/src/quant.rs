//! [`QuantizedPhaseTable`] — fixed-point, SIMD-friendly classification with
//! a built-in exactness oracle.
//!
//! [`PhaseTable`] made steady-state classification three f64 table lookups,
//! an 8-way product and an arg-max per pixel.  This module quantizes that
//! table to integers so the inner loop becomes integer SIMD — and still
//! produces labels **bit-identical** to the exact segmenter, by construction
//! rather than by luck.
//!
//! # The log-space arg-max argument
//!
//! Classification needs only the *arg-max* of the eight per-state products
//! `P(j) = t0[j] · t1[j] · t2[j]` (factors in `[0, 1]`), never their values.
//! The logarithm is strictly monotone, so
//! `argmax_j P(j) = argmax_j (ln t0[j] + ln t1[j] + ln t2[j])` — a *sum*,
//! which quantizes gracefully where a product would not.  Each per-channel
//! log-factor is quantized once, at table-build time, to the fixed-point
//! integer `q = round(QUANT_SCALE · ln max(t, FACTOR_FLOOR))`, and per pixel
//! the eight candidate scores are three i16 vector adds.
//!
//! Quantization rounds, so near-equal products could flip order.  Three
//! facts bound the damage and make the result provably exact:
//!
//! 1. **Per-state error ≤ 3/2 units.**  Each of the three terms rounds by at
//!    most ½ unit, so an *unclamped* state's integer score differs from
//!    `QUANT_SCALE · ln P(j)` by at most 3/2 (plus a few f64 ulps, orders of
//!    magnitude below a unit).
//! 2. **The floor never hides a winner.**  The eight probabilities sum to 1
//!    (the register is a unit product state), so the true winner has
//!    `P ≥ 1/8`, and — factors being ≤ 1 — each of *its* factors is
//!    `≥ 1/8 > FACTOR_FLOOR`: the winner is never clamped.  A state with a
//!    clamped factor has true `P < FACTOR_FLOOR` and an integer score of at
//!    most `QUANT_SCALE · ln FACTOR_FLOOR + ½ ≈ −7097`, while the winner
//!    scores at least `QUANT_SCALE · ln(1/8) − 3/2 ≈ −2131`; clamped states
//!    lose by thousands of units and can never win or tie.
//! 3. **Ambiguity is detectable.**  If the best integer score beats every
//!    other by **more than `2 × 3/2 = 3` units**, the true (f64) order
//!    cannot differ — the quantized arg-max is the exact arg-max.  Only when
//!    some other state comes within 3 units is the order in doubt, and for
//!    exactly those pixels the classifier falls back to the f64
//!    [`PhaseTable`] path (itself bit-identical to the exact segmenter,
//!    including the ties-to-lowest-index rule).
//!
//! The result: **zero label mismatches against the exact oracle, for every
//! `ThetaParams`, bit order and normalization** — enforced by the exhaustive
//! tests below and by the default-on verification in the throughput and
//! loadgen harnesses.  The fallback is rare (near-ties in the top-2
//! probabilities within ~0.3% relative) and each fallback costs one f64
//! table classification, so the fast path dominates.
//!
//! # SIMD
//!
//! The eight candidate scores of one pixel are exactly one 128-bit register
//! of i16 lanes, and every table row is 16 contiguous bytes, so the kernel
//! shape is: three indexed row loads, two vector adds, a horizontal arg-max,
//! and a one-instruction ambiguity test (compare against `best − 4`, count
//! lanes).  Three `std::arch` kernels are provided behind runtime dispatch —
//! SSE2 (x86-64 baseline), SSE4.1 (`phminposuw` gives the arg-max *and* its
//! index in one instruction) and AVX2 (two pixels per 256-bit add) — plus a
//! scalar kernel that performs the identical integer arithmetic, used on
//! other architectures, for loop tails, and as the `quant` classifier kind.
//! All kernels are byte-identical to each other by construction.  The
//! `IQFT_SIMD` environment variable (`off`/`scalar`, `sse2`, `sse41`,
//! `avx2`, `auto`) pins or disables dispatch, which is how CI keeps the
//! scalar path exercised on SIMD-capable runners.
//!
//! The quantized table is also 4× smaller than the f64 table (12 KiB vs
//! 48 KiB) and fits entirely in L1, which is worth as much as the vector
//! arithmetic on table-lookup-bound workloads.

use crate::phase_table::PhaseTable;
use crate::rgb::{IqftRgbSegmenter, NUM_STATES};
use crate::theta::ThetaParams;
use imaging::{LabelMap, PixelClassifier, Rgb, RgbImage, Segmenter};
use seg_engine::SegmentEngine;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of distinct values an 8-bit channel can take.
const CHANNEL_VALUES: usize = 256;

/// Fixed-point scale: one integer unit is `1/QUANT_SCALE` in log space.
///
/// Chosen so the most negative per-term value,
/// `round(QUANT_SCALE · ln FACTOR_FLOOR) = −7098`, sums over three terms to
/// `−21294` — comfortably inside i16, so the three adds can never wrap (or
/// saturate, in the SIMD kernels).
const QUANT_SCALE: f64 = 1024.0;

/// Factors below this are clamped before the log.  `1/8` separates possible
/// winners from certain losers (see the module docs), so anything well below
/// `1/8` works; `2⁻¹⁰` keeps the clamped score thousands of units beneath
/// any winner while bounding the table's dynamic range.
const FACTOR_FLOOR: f64 = 1.0 / 1024.0;

/// Integer scores within this gap of the best are ambiguous under
/// quantization (two states, each up to 3/2 units from its true score) and
/// send the pixel to the f64 oracle.  A strictly larger gap proves the
/// quantized arg-max exact.
const AMBIGUITY_GAP: i16 = 3;

/// The `std::arch` kernel a [`QuantizedPhaseTable`] classifies with.
///
/// Levels are ordered by capability; [`SimdLevel::detect`] resolves the best
/// supported level at runtime (honouring the `IQFT_SIMD` environment
/// variable) and [`QuantizedPhaseTable::with_simd`] clamps a request down to
/// what the host supports.  Every level produces byte-identical labels — the
/// choice is purely about speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable integer scalar loop (every architecture; the `quant`
    /// classifier kind pins this level).
    Scalar,
    /// SSE2 128-bit kernel (the x86-64 baseline — always available there).
    Sse2,
    /// SSE4.1 kernel: `phminposuw` finds the arg-max and its index in one
    /// instruction.
    Sse41,
    /// AVX2 kernel: two pixels per 256-bit add, SSE4.1 arg-max per pixel.
    Avx2,
}

impl SimdLevel {
    /// Every level, in increasing capability order.
    pub const ALL: [SimdLevel; 4] = [
        SimdLevel::Scalar,
        SimdLevel::Sse2,
        SimdLevel::Sse41,
        SimdLevel::Avx2,
    ];

    /// Whether the running host can execute this level.
    pub fn is_supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse41 => is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The best supported level at or below `self`.
    pub fn clamp_to_supported(self) -> SimdLevel {
        SimdLevel::ALL
            .into_iter()
            .rev()
            .find(|level| *level <= self && level.is_supported())
            .unwrap_or(SimdLevel::Scalar)
    }

    /// Resolves the dispatch level for this host.
    ///
    /// The `IQFT_SIMD` environment variable overrides autodetection:
    /// `off`/`scalar` force the scalar kernel (the CI leg that keeps the
    /// non-SIMD path tested), `sse2`/`sse41`/`avx2` pin a level (clamped to
    /// what the host supports), and `auto`/unset/unknown pick the best
    /// supported level.
    pub fn detect() -> SimdLevel {
        let requested = match std::env::var("IQFT_SIMD").as_deref() {
            Ok("off") | Ok("scalar") => SimdLevel::Scalar,
            Ok("sse2") => SimdLevel::Sse2,
            Ok("sse41") | Ok("sse4.1") => SimdLevel::Sse41,
            Ok("avx2") => SimdLevel::Avx2,
            _ => SimdLevel::Avx2, // auto: best supported
        };
        requested.clamp_to_supported()
    }

    /// The flag/env spelling of this level.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Sse41 => "sse41",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Quantizes one f64 probability factor to its fixed-point log score.
fn quantize(factor: f64) -> i16 {
    (factor.max(FACTOR_FLOOR).ln() * QUANT_SCALE).round() as i16
}

/// One register qubit's quantized rows, indexed by channel value.  The
/// fixed 256-row length matters: a `u8` index into a `Block` can never
/// overrun, so the kernels compile without bounds checks.
type Block = [[i16; NUM_STATES]; CHANNEL_VALUES];

/// Sums the three per-channel table rows for `pixel` — the shared integer
/// arithmetic of every kernel.  `blocks` comes from
/// [`QuantizedPhaseTable::channel_blocks`], so entry `c` already belongs to
/// the qubit that reads image channel `c` and the pixel is indexed with
/// constant channel positions (no runtime-permutation lookups per pixel).
#[inline]
fn sums_from(blocks: &[&Block; 3], pixel: Rgb<u8>) -> [i16; NUM_STATES] {
    let r = &blocks[0][pixel.0[0] as usize];
    let g = &blocks[1][pixel.0[1] as usize];
    let b = &blocks[2][pixel.0[2] as usize];
    let mut sums = [0i16; NUM_STATES];
    for (j, slot) in sums.iter_mut().enumerate() {
        // Never wraps: each term is ≥ round(QUANT_SCALE·ln FACTOR_FLOOR)
        // = −7098 and ≤ 0, so the sum stays within [−21294, 0].
        *slot = r[j] + g[j] + b[j];
    }
    sums
}

/// The quantized arg-max decision shared (in spirit — the SIMD kernels
/// re-derive it lane-wise) by every kernel: the first index holding the
/// maximum score, or `None` when any *other* state scores within
/// [`AMBIGUITY_GAP`] of the best (including exact integer ties), in which
/// case the caller must consult the f64 oracle.
#[inline]
fn decide(sums: &[i16; NUM_STATES]) -> Option<u32> {
    let mut best = sums[0];
    let mut best_idx = 0u32;
    for (j, &s) in sums.iter().enumerate().skip(1) {
        if s > best {
            best = s;
            best_idx = j as u32;
        }
    }
    // Exactly one lane may exceed best − (GAP + 1): the best lane itself.
    // A second lane above the threshold means some state is within GAP
    // units — ambiguous under quantization.
    let threshold = best - (AMBIGUITY_GAP + 1);
    let contenders = sums.iter().filter(|&&s| s > threshold).count();
    (contenders == 1).then_some(best_idx)
}

/// A fixed-point, log-space quantization of a [`PhaseTable`] with runtime
/// SIMD dispatch and a per-pixel f64 exactness oracle.
///
/// Labels are **bit-identical** to the exact [`IqftRgbSegmenter`] for every
/// configuration — see the [module docs](self) for the argument.  Build one
/// with [`QuantizedPhaseTable::from_table`] (or the convenience
/// constructors), pick a kernel with [`QuantizedPhaseTable::with_simd`], and
/// classify through the [`PixelClassifier`] hooks like any other classifier:
/// the batched slice hook is where the SIMD kernels engage.
///
/// # Example
///
/// ```
/// use imaging::{Rgb, Segmenter};
/// use iqft_seg::{PhaseTable, QuantizedPhaseTable};
///
/// let exact = PhaseTable::paper_default();
/// let quant = QuantizedPhaseTable::paper_default();
/// for pixel in [Rgb::new(13, 200, 77), Rgb::new(254, 1, 128)] {
///     assert_eq!(quant.classify(pixel), exact.classify(pixel));
/// }
/// ```
#[derive(Debug)]
pub struct QuantizedPhaseTable {
    /// `qlog[q * 256 + v]` — the eight quantized log-factors contributed by
    /// register qubit `q` when its channel has value `v`.  One row is one
    /// 128-bit SIMD register.
    qlog: Vec<[i16; NUM_STATES]>,
    /// Register position → RGB channel index, copied from the source table.
    channel_of_qubit: [usize; 3],
    /// The f64 oracle consulted for ambiguous pixels (and the engine owner).
    exact: PhaseTable,
    /// The kernel classification dispatches to.
    level: SimdLevel,
    /// Pixels that consulted the oracle (ambiguous quantized gaps).
    fallbacks: AtomicU64,
}

impl Clone for QuantizedPhaseTable {
    fn clone(&self) -> Self {
        Self {
            qlog: self.qlog.clone(),
            channel_of_qubit: self.channel_of_qubit,
            exact: self.exact.clone(),
            level: self.level,
            fallbacks: AtomicU64::new(self.fallbacks.load(Ordering::Relaxed)),
        }
    }
}

impl QuantizedPhaseTable {
    /// Quantizes an existing f64 phase table (which stays embedded as the
    /// exactness oracle).  The dispatch level starts at
    /// [`SimdLevel::detect`].
    pub fn from_table(table: &PhaseTable) -> Self {
        let mut qlog = vec![[0i16; NUM_STATES]; 3 * CHANNEL_VALUES];
        for q in 0..3 {
            for v in 0..CHANNEL_VALUES {
                let factors = table.factor(q, v as u8);
                let row = &mut qlog[q * CHANNEL_VALUES + v];
                for (slot, &factor) in row.iter_mut().zip(factors.iter()) {
                    *slot = quantize(factor);
                }
            }
        }
        Self {
            qlog,
            channel_of_qubit: table.channel_of_qubit(),
            exact: table.clone(),
            level: SimdLevel::detect(),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Builds the quantized table for `segmenter`'s exact configuration.
    pub fn from_segmenter(segmenter: &IqftRgbSegmenter) -> Self {
        Self::from_table(&PhaseTable::from_segmenter(segmenter))
    }

    /// Builds the table for the given angles with the default configuration
    /// (normalisation on, eq. 11 qubit ordering).
    pub fn new(thetas: ThetaParams) -> Self {
        Self::from_segmenter(&IqftRgbSegmenter::new(thetas))
    }

    /// The paper's headline configuration (`θ1 = θ2 = θ3 = π`), quantized.
    pub fn paper_default() -> Self {
        Self::from_segmenter(&IqftRgbSegmenter::paper_default())
    }

    /// Selects the kernel (clamped to what the host supports, so the result
    /// is always executable).  `SimdLevel::Scalar` pins the portable integer
    /// loop — the `quant` classifier kind.
    pub fn with_simd(mut self, level: SimdLevel) -> Self {
        self.level = level.clamp_to_supported();
        self
    }

    /// Routes whole-image segmentation through `engine`.
    pub fn with_engine(mut self, engine: SegmentEngine) -> Self {
        self.exact = self.exact.with_engine(engine);
        self
    }

    /// Selects the execution backend for whole-image segmentation.
    pub fn with_backend(self, backend: xpar::Backend) -> Self {
        self.with_engine(SegmentEngine::new(backend))
    }

    /// The engine whole-image calls execute on.
    pub fn engine(&self) -> SegmentEngine {
        self.exact.engine()
    }

    /// The kernel classification dispatches to.
    pub fn simd_level(&self) -> SimdLevel {
        self.level
    }

    /// The angle parameters the table was built for.
    pub fn thetas(&self) -> ThetaParams {
        self.exact.thetas()
    }

    /// The embedded f64 oracle (bit-identical to the exact segmenter).
    pub fn oracle(&self) -> &PhaseTable {
        &self.exact
    }

    /// Number of quantized rows (3 registers × 256 values).
    pub fn entries(&self) -> usize {
        self.qlog.len()
    }

    /// Total pixels classified through the f64 oracle because their
    /// quantized arg-max was ambiguous.  Monotone over the table's lifetime;
    /// the serving stack surfaces this through `ServerStats`.
    pub fn fallback_pixels(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// The three quantized log-score vectors summed for `pixel` — the
    /// integer scores the arg-max decision runs on (exposed for tests and
    /// diagnostics).
    pub fn quantized_sums(&self, pixel: Rgb<u8>) -> [i16; NUM_STATES] {
        sums_from(&self.channel_blocks(), pixel)
    }

    /// The three per-qubit table blocks rearranged by *image channel*:
    /// entry `c` is the block of the qubit that reads channel `c` (the
    /// inverse of `channel_of_qubit`).  Kernels hoist this once per slice
    /// and then index pixels at constant channel positions, which is what
    /// lets the compiler drop every per-pixel bounds check.
    fn channel_blocks(&self) -> [&Block; 3] {
        let block = |q: usize| -> &Block {
            self.qlog[q * CHANNEL_VALUES..(q + 1) * CHANNEL_VALUES]
                .try_into()
                .expect("qlog holds three 256-row blocks")
        };
        let mut blocks = [block(0); 3];
        for (q, &c) in self.channel_of_qubit.iter().enumerate() {
            blocks[c] = block(q);
        }
        blocks
    }

    /// Classifies one pixel: the quantized arg-max when it is provably
    /// exact, the f64 oracle otherwise.  Bit-identical to
    /// [`IqftRgbSegmenter::classify`] either way.
    pub fn classify(&self, pixel: Rgb<u8>) -> u32 {
        match decide(&self.quantized_sums(pixel)) {
            Some(label) => label,
            None => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.exact.classify(pixel)
            }
        }
    }

    /// Classifies a contiguous pixel run through the selected kernel — the
    /// hot path behind [`PixelClassifier::classify_rgb_slice_into`].
    ///
    /// # Panics
    ///
    /// Panics if `pixels` and `out` differ in length.
    pub fn classify_slice(&self, pixels: &[Rgb<u8>], out: &mut [u32]) {
        assert_eq!(
            pixels.len(),
            out.len(),
            "label slice does not match the pixel slice"
        );
        let fallbacks = match self.level {
            SimdLevel::Scalar => self.classify_slice_scalar(pixels, out),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: with_simd/detect clamp the level to host support, so
            // the required target features are present.
            SimdLevel::Sse2 => unsafe { x86::classify_slice_sse2(self, pixels, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse41 => unsafe { x86::classify_slice_sse41(self, pixels, out) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { x86::classify_slice_avx2(self, pixels, out) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.classify_slice_scalar(pixels, out),
        };
        if fallbacks > 0 {
            self.fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
        }
    }

    /// The portable integer kernel (also the tail loop of the SIMD kernels).
    /// Returns the number of oracle fallbacks instead of counting them on
    /// the shared atomic, so row kernels pay one atomic add per slice.
    fn classify_slice_scalar(&self, pixels: &[Rgb<u8>], out: &mut [u32]) -> u64 {
        let blocks = self.channel_blocks();
        let mut fallbacks = 0u64;
        for (label, &pixel) in out.iter_mut().zip(pixels) {
            *label = match decide(&sums_from(&blocks, pixel)) {
                Some(idx) => idx,
                None => {
                    fallbacks += 1;
                    self.exact.classify(pixel)
                }
            };
        }
        fallbacks
    }

    /// Classifies every pixel of a zero-copy sub-image view into a matching
    /// label view (the tile work unit), via the selected kernel row by row.
    pub fn classify_view_into(
        &self,
        view: &imaging::ImageView<'_, Rgb<u8>>,
        out: &mut imaging::LabelViewMut<'_>,
    ) {
        PixelClassifier::classify_rgb_view_into(self, view, out);
    }
}

impl PixelClassifier for QuantizedPhaseTable {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(pixel)
    }

    fn classify_rgb_slice_into(&self, pixels: &[Rgb<u8>], out: &mut [u32]) {
        self.classify_slice(pixels, out);
    }
}

impl Segmenter for QuantizedPhaseTable {
    fn name(&self) -> &str {
        match self.level {
            SimdLevel::Scalar => "IQFT (RGB, quantized)",
            _ => "IQFT (RGB, quantized SIMD)",
        }
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        self.engine().segment_rgb(self, img)
    }
}

/// The `std::arch` kernels.  Every kernel performs the *identical* integer
/// arithmetic as [`QuantizedPhaseTable::classify_slice_scalar`] — same
/// quantized sums, same first-max tie rule, same ambiguity threshold — so
/// outputs are byte-identical across levels by construction.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Block, QuantizedPhaseTable, AMBIGUITY_GAP};
    use imaging::Rgb;
    use std::arch::x86_64::*;

    /// Loads one block's 16-byte quantized row for channel value `v`.  The
    /// `u8` index into the fixed 256-row block needs no bounds check.
    #[inline(always)]
    unsafe fn row(block: &Block, v: u8) -> __m128i {
        _mm_loadu_si128(block[v as usize].as_ptr().cast())
    }

    /// Loads the three per-channel table rows for `pixel` and sums them
    /// into eight i16 lanes.  The adds cannot wrap (sums stay within
    /// [−21294, 0]).
    #[inline(always)]
    unsafe fn sums_of(blocks: &[&Block; 3], pixel: Rgb<u8>) -> __m128i {
        let v0 = row(blocks[0], pixel.0[0]);
        let v1 = row(blocks[1], pixel.0[1]);
        let v2 = row(blocks[2], pixel.0[2]);
        _mm_add_epi16(_mm_add_epi16(v0, v1), v2)
    }

    /// Reduces a 16-bit `movemask_epi8` contender mask (two bits per i16
    /// lane) to one bit per lane.  The result is never zero — the max lane
    /// always contends — so "exactly one contender" is the power-of-two
    /// test `lanes & (lanes − 1) == 0`, with no `popcnt` dependency (the
    /// baseline `#[target_feature]` sets here do not include it, and LLVM
    /// expands `count_ones` grotesquely without it).
    #[inline(always)]
    fn contender_lanes(mask: u32) -> u32 {
        mask & 0x5555
    }

    /// The SSE2 arg-max + ambiguity decision: `(first max index, ambiguous)`.
    #[inline(always)]
    unsafe fn decide_sse2(sums: __m128i) -> (u32, bool) {
        // Horizontal max by halving reductions: after three swap+max rounds
        // every lane holds the global maximum.
        let m = _mm_max_epi16(sums, _mm_shuffle_epi32(sums, 0b0100_1110));
        let m = _mm_max_epi16(m, _mm_shuffle_epi32(m, 0b1011_0001));
        let swapped = _mm_shufflehi_epi16(_mm_shufflelo_epi16(m, 0b1011_0001), 0b1011_0001);
        let m = _mm_max_epi16(m, swapped);
        // Contenders above best − (GAP + 1): an unambiguous decision has
        // exactly one (the max lane), whose position is the winning index;
        // otherwise the index is never read (oracle fallback).
        let threshold = _mm_sub_epi16(m, _mm_set1_epi16(AMBIGUITY_GAP + 1));
        let contenders =
            contender_lanes(_mm_movemask_epi8(_mm_cmpgt_epi16(sums, threshold)) as u32);
        (
            contenders.trailing_zeros() / 2,
            contenders & (contenders - 1) != 0,
        )
    }

    /// The SSE4.1 decision: `phminposuw` on the order-reversing map
    /// `u = 0x7FFF − s` finds the max value *and* its first index at once.
    #[inline(always)]
    unsafe fn decide_sse41(sums: __m128i) -> (u32, bool) {
        let reversed = _mm_sub_epi16(_mm_set1_epi16(0x7FFF), sums);
        let minpos = _mm_minpos_epu16(reversed);
        let min = _mm_extract_epi16(minpos, 0) as u16;
        let idx = (_mm_extract_epi16(minpos, 1) as u32) & 7;
        let best = (0x7FFF - min as i32) as i16;
        (idx, ambiguous(sums, best))
    }

    /// True when any state other than the best scores within
    /// [`AMBIGUITY_GAP`] units: exactly one lane may exceed `best − 4` (the
    /// best itself), so any second contender lane means ambiguity.
    #[inline(always)]
    unsafe fn ambiguous(sums: __m128i, best: i16) -> bool {
        let threshold = _mm_set1_epi16(best - (AMBIGUITY_GAP + 1));
        let contenders =
            contender_lanes(_mm_movemask_epi8(_mm_cmpgt_epi16(sums, threshold)) as u32);
        contenders & (contenders - 1) != 0
    }

    /// Resolves one decided pixel, falling back to the f64 oracle when the
    /// quantized gap was ambiguous.
    #[inline(always)]
    fn resolve(
        table: &QuantizedPhaseTable,
        pixel: Rgb<u8>,
        decision: (u32, bool),
        fallbacks: &mut u64,
    ) -> u32 {
        let (idx, ambiguous) = decision;
        if ambiguous {
            *fallbacks += 1;
            table.oracle().classify(pixel)
        } else {
            idx
        }
    }

    /// SSE2 row kernel (x86-64 baseline): one pixel per iteration.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn classify_slice_sse2(
        table: &QuantizedPhaseTable,
        pixels: &[Rgb<u8>],
        out: &mut [u32],
    ) -> u64 {
        let blocks = table.channel_blocks();
        let mut fallbacks = 0u64;
        for (label, &pixel) in out.iter_mut().zip(pixels) {
            let decision = decide_sse2(sums_of(&blocks, pixel));
            *label = resolve(table, pixel, decision, &mut fallbacks);
        }
        fallbacks
    }

    /// SSE4.1 row kernel: one pixel per iteration, `phminposuw` arg-max.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn classify_slice_sse41(
        table: &QuantizedPhaseTable,
        pixels: &[Rgb<u8>],
        out: &mut [u32],
    ) -> u64 {
        let blocks = table.channel_blocks();
        let mut fallbacks = 0u64;
        for (label, &pixel) in out.iter_mut().zip(pixels) {
            let decision = decide_sse41(sums_of(&blocks, pixel));
            *label = resolve(table, pixel, decision, &mut fallbacks);
        }
        fallbacks
    }

    /// AVX2 row kernel: two pixels per iteration, one per 128-bit half.
    ///
    /// The table-row adds, the horizontal arg-max reduction (the 128-bit
    /// lane-local shuffles operate on both halves at once) and the
    /// ambiguity threshold all stay in 256-bit registers — no scalar
    /// round-trips until the final mask extraction, and the common
    /// "both pixels unambiguous" case costs a single popcount (each
    /// unambiguous half contributes exactly two set mask bits, so 4 total).
    /// The odd tail pixel goes through a per-pixel SSE4.1 step.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn classify_slice_avx2(
        table: &QuantizedPhaseTable,
        pixels: &[Rgb<u8>],
        out: &mut [u32],
    ) -> u64 {
        let blocks = table.channel_blocks();
        let gap = _mm256_set1_epi16(AMBIGUITY_GAP + 1);
        let mut fallbacks = 0u64;
        let mut i = 0usize;
        while i + 2 <= pixels.len() {
            let (a, b) = (pixels[i], pixels[i + 1]);
            let v0 = _mm256_set_m128i(row(blocks[0], b.0[0]), row(blocks[0], a.0[0]));
            let v1 = _mm256_set_m128i(row(blocks[1], b.0[1]), row(blocks[1], a.0[1]));
            let v2 = _mm256_set_m128i(row(blocks[2], b.0[2]), row(blocks[2], a.0[2]));
            let sums = _mm256_add_epi16(_mm256_add_epi16(v0, v1), v2);
            // Per-half horizontal max: the three swap+max rounds leave every
            // lane of each half holding that half's maximum.
            let m = _mm256_max_epi16(sums, _mm256_shuffle_epi32(sums, 0b0100_1110));
            let m = _mm256_max_epi16(m, _mm256_shuffle_epi32(m, 0b1011_0001));
            let swapped =
                _mm256_shufflehi_epi16(_mm256_shufflelo_epi16(m, 0b1011_0001), 0b1011_0001);
            let m = _mm256_max_epi16(m, swapped);
            // Contenders above best − (GAP + 1), per half.  An unambiguous
            // half has exactly one contender — the max lane itself — so the
            // winning index is the position of the half's only contender
            // lane and no separate equality mask is needed.  (With two or
            // more contenders the half is ambiguous and the index is never
            // read: the pixel resolves through the f64 oracle.)
            let gt =
                _mm256_movemask_epi8(_mm256_cmpgt_epi16(sums, _mm256_sub_epi16(m, gap))) as u32;
            let lo = contender_lanes(gt);
            let hi = contender_lanes(gt >> 16);
            if lo & (lo - 1) == 0 && hi & (hi - 1) == 0 {
                // Both halves have exactly one contender (the max lane):
                // both pixels are provably exact.
                out[i] = lo.trailing_zeros() / 2;
                out[i + 1] = hi.trailing_zeros() / 2;
            } else {
                let decision_a = (lo.trailing_zeros() / 2, lo & (lo - 1) != 0);
                let decision_b = (hi.trailing_zeros() / 2, hi & (hi - 1) != 0);
                out[i] = resolve(table, a, decision_a, &mut fallbacks);
                out[i + 1] = resolve(table, b, decision_b, &mut fallbacks);
            }
            i += 2;
        }
        if i < pixels.len() {
            let pixel = pixels[i];
            let decision = decide_sse41(sums_of(&blocks, pixel));
            out[i] = resolve(table, pixel, decision, &mut fallbacks);
        }
        fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgb::BitOrder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Every configuration axis the quantization argument must hold under.
    fn configurations() -> Vec<IqftRgbSegmenter> {
        let mut configs = Vec::new();
        for thetas in [
            ThetaParams::paper_default(),
            ThetaParams::mixed(),
            ThetaParams::new(1.3, 2.9, 0.4),
            ThetaParams::uniform(5.5),
        ] {
            for bit_order in [BitOrder::Equation11, BitOrder::FigureConsistent] {
                for normalize in [true, false] {
                    configs.push(
                        IqftRgbSegmenter::new(thetas)
                            .with_bit_order(bit_order)
                            .with_normalization(normalize),
                    );
                }
            }
        }
        configs
    }

    #[test]
    fn quantized_factors_match_the_documented_scheme_for_all_channel_values() {
        // All 3 × 256 per-channel rows: the quantized entry must be exactly
        // round(QUANT_SCALE · ln max(factor, FACTOR_FLOOR)) of the f64
        // table's factor, and every term must respect the documented range
        // (so three adds can never wrap an i16).
        let exact = PhaseTable::paper_default();
        let quant = QuantizedPhaseTable::from_table(&exact);
        let term_min = (QUANT_SCALE * FACTOR_FLOOR.ln()).round() as i16;
        assert_eq!(term_min, -7098);
        for q in 0..3 {
            for v in 0..=255u8 {
                let factors = exact.factor(q, v);
                for (j, &factor) in factors.iter().enumerate() {
                    let expected = quantize(factor);
                    let row = &quant.qlog[q * CHANNEL_VALUES + v as usize];
                    assert_eq!(row[j], expected, "q={q} v={v} j={j}");
                    assert!(row[j] >= term_min && row[j] <= 0, "q={q} v={v} j={j}");
                }
            }
        }
    }

    #[test]
    fn strided_rgb_grid_agrees_with_the_exact_oracle_bit_for_bit() {
        // A deterministic stride over the full 256³ input cube (coprime
        // steps so the sample is spread, ~100k pixels per configuration on
        // the headline config, a coarser stride elsewhere).  The contract is
        // zero mismatches — not a bound — because ambiguous pixels consult
        // the oracle.
        for (i, segmenter) in configurations().into_iter().enumerate() {
            let exact = PhaseTable::from_segmenter(&segmenter);
            let quant = QuantizedPhaseTable::from_table(&exact);
            let (sr, sg, sb) = if i == 0 { (3, 7, 11) } else { (17, 13, 19) };
            for r in (0..256usize).step_by(sr) {
                for g in (0..256usize).step_by(sg) {
                    for b in (0..256usize).step_by(sb) {
                        let pixel = Rgb::new(r as u8, g as u8, b as u8);
                        assert_eq!(
                            quant.classify(pixel),
                            exact.classify(pixel),
                            "config {i}, {pixel:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_kernel_is_byte_identical_to_the_scalar_reference() {
        // SIMD must never diverge from its own scalar reference: same
        // labels *and* same fallback counts, per supported level, on a
        // slice long enough to exercise the AVX2 pair loop and its odd
        // tail.
        let mut rng = ChaCha8Rng::seed_from_u64(808);
        let pixels: Vec<Rgb<u8>> = (0..4093)
            .map(|_| Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>()))
            .collect();
        let scalar = QuantizedPhaseTable::paper_default().with_simd(SimdLevel::Scalar);
        let mut reference = vec![0u32; pixels.len()];
        scalar.classify_slice(&pixels, &mut reference);
        for level in SimdLevel::ALL {
            if !level.is_supported() {
                continue;
            }
            let table = QuantizedPhaseTable::paper_default().with_simd(level);
            assert_eq!(table.simd_level(), level);
            let mut out = vec![0u32; pixels.len()];
            table.classify_slice(&pixels, &mut out);
            assert_eq!(out, reference, "{level}");
            assert_eq!(table.fallback_pixels(), scalar.fallback_pixels(), "{level}");
        }
    }

    #[test]
    fn random_theta_fuzz_agrees_with_the_exact_segmenter() {
        // Deterministic proptest-style fuzz: random ThetaParams (including
        // degenerate θ = 0 axes), random pixels, every supported kernel —
        // always bit-identical to the exact f64 segmenter.
        let mut rng = ChaCha8Rng::seed_from_u64(31337);
        for case in 0..24 {
            let theta = ThetaParams::new(
                rng.gen_range(0.0..2.0 * std::f64::consts::PI),
                rng.gen_range(0.0..2.0 * std::f64::consts::PI),
                rng.gen_range(0.0..2.0 * std::f64::consts::PI),
            );
            let exact = IqftRgbSegmenter::new(theta);
            let pixels: Vec<Rgb<u8>> = (0..257)
                .map(|_| Rgb::new(rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>()))
                .collect();
            let expected: Vec<u32> = pixels.iter().map(|&p| exact.classify(p)).collect();
            for level in SimdLevel::ALL.into_iter().filter(|l| l.is_supported()) {
                let quant = QuantizedPhaseTable::from_segmenter(&exact).with_simd(level);
                let mut out = vec![0u32; pixels.len()];
                quant.classify_slice(&pixels, &mut out);
                assert_eq!(out, expected, "case {case}, {level}");
                // The per-pixel API agrees with the slice API.
                for (&pixel, &label) in pixels.iter().zip(expected.iter()).take(16) {
                    assert_eq!(quant.classify(pixel), label, "case {case}, {level}");
                }
            }
        }
    }

    #[test]
    fn exact_tie_inputs_fall_back_and_keep_the_lowest_index_rule() {
        // White under θ = π puts every phase at exactly π, which makes
        // states 3 and 5 tie with probability (1/2)·sin²(3π/8) each (up to
        // a couple of f64 ulps of evaluation noise) — a zero quantized gap,
        // so the pixel must route through the oracle and reproduce the
        // exact winner (label 3).
        let quant = QuantizedPhaseTable::paper_default();
        let exact = IqftRgbSegmenter::paper_default();
        let white = Rgb::new(255, 255, 255);
        let p = exact.probabilities(white);
        assert!((p[3] - p[5]).abs() < 1e-14, "premise: states 3/5 tie");
        assert_eq!(exact.classify(white), 3);
        for level in SimdLevel::ALL.into_iter().filter(|l| l.is_supported()) {
            let quant = QuantizedPhaseTable::paper_default().with_simd(level);
            let mut out = [0u32; 1];
            quant.classify_slice(&[white], &mut out);
            assert_eq!(out[0], 3, "{level}");
            assert_eq!(quant.fallback_pixels(), 1, "{level}: tie must fall back");
        }
        assert_eq!(quant.classify(white), 3);
        assert_eq!(quant.fallback_pixels(), 1);
    }

    #[test]
    fn fallbacks_are_rare_on_the_headline_configuration() {
        // The fast path only pays off if the oracle is consulted rarely;
        // on a dense strided grid of the paper's headline configuration the
        // ambiguous fraction stays far below 1 in 20.
        let quant = QuantizedPhaseTable::paper_default().with_simd(SimdLevel::Scalar);
        let mut total = 0u64;
        for r in (0..256usize).step_by(5) {
            for g in (0..256usize).step_by(7) {
                for b in (0..256usize).step_by(11) {
                    quant.classify(Rgb::new(r as u8, g as u8, b as u8));
                    total += 1;
                }
            }
        }
        let fallbacks = quant.fallback_pixels();
        assert!(
            (fallbacks as f64) < total as f64 * 0.05,
            "{fallbacks} fallbacks over {total} pixels"
        );
    }

    #[test]
    fn whole_image_and_view_paths_match_the_exact_segmenter() {
        let img = RgbImage::from_fn(41, 29, |x, y| {
            Rgb::new((x * 6) as u8, (y * 9) as u8, ((x * y) % 256) as u8)
        });
        let exact = IqftRgbSegmenter::paper_default();
        let reference = exact.segment_rgb(&img);
        let quant = QuantizedPhaseTable::paper_default();
        assert_eq!(quant.segment_rgb(&img), reference);
        // Tiled stitching through the view hook.
        let mut stitched = imaging::LabelMap::new(41, 29, u32::MAX);
        for rect in img.tile_rects(10, 4) {
            let tile = img.view(rect).unwrap();
            quant.classify_view_into(&tile, &mut stitched.view_mut(rect).unwrap());
        }
        assert_eq!(stitched, reference);
        // And across engines.
        for engine in [SegmentEngine::serial(), SegmentEngine::with_threads(2)] {
            assert_eq!(
                QuantizedPhaseTable::paper_default()
                    .with_engine(engine)
                    .segment_rgb(&img),
                reference
            );
        }
    }

    #[test]
    fn level_detection_clamps_and_names_round_trip() {
        for level in SimdLevel::ALL {
            assert_eq!(format!("{level}"), level.name());
            let clamped = level.clamp_to_supported();
            assert!(clamped.is_supported());
            assert!(clamped <= level);
        }
        assert!(SimdLevel::Scalar.is_supported());
        assert!(SimdLevel::detect().is_supported());
        #[cfg(target_arch = "x86_64")]
        assert!(
            SimdLevel::Sse2.is_supported(),
            "SSE2 is the x86-64 baseline"
        );
        // Requesting a level on a host that lacks it degrades, never fails.
        let table = QuantizedPhaseTable::paper_default().with_simd(SimdLevel::Avx2);
        assert!(table.simd_level().is_supported());
    }

    #[test]
    fn accessors_and_clone_preserve_configuration() {
        let table = QuantizedPhaseTable::paper_default();
        assert_eq!(table.entries(), 3 * 256);
        assert!((table.thetas().theta1 - std::f64::consts::PI).abs() < 1e-12);
        assert_eq!(table.oracle().thetas().theta1, table.thetas().theta1);
        let scalar = table.with_simd(SimdLevel::Scalar);
        assert_eq!(scalar.simd_level(), SimdLevel::Scalar);
        assert_eq!(scalar.name(), "IQFT (RGB, quantized)");
        let cloned = scalar.clone();
        assert_eq!(cloned.simd_level(), SimdLevel::Scalar);
        assert_eq!(cloned.entries(), 3 * 256);
        let serial = QuantizedPhaseTable::paper_default()
            .with_backend(xpar::Backend::Serial)
            .engine();
        assert_eq!(serial, SegmentEngine::serial());
    }
}
