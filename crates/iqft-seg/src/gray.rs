//! The grayscale (1-qubit) IQFT-inspired segmenter.
//!
//! A pixel of normalised intensity `I` is encoded as the single-qubit state
//! `(|0⟩ + e^{iIθ}|1⟩)/√2` (the paper's eq. 12); applying the 1-qubit IQFT
//! (which is just a Hadamard) gives class probabilities
//!
//! ```text
//! p(class1) = ((1 + cos Iθ)² + sin² Iθ) / 4
//! p(class2) = ((1 − cos Iθ)² + sin² Iθ) / 4
//! ```
//!
//! (eq. 14).  The boundary `p(class1) = p(class2)` falls exactly where
//! `cos Iθ = 0`, so a choice of θ is a choice of threshold(s) — see
//! [`crate::theta`].  For θ > 3π/2 several thresholds fall inside `[0, 1]`
//! and the method separates *bands* of intensity with a single parameter
//! (the paper's Fig. 4 "balls" example, eq. 16).

use crate::theta::thresholds_for_theta;
use imaging::{color, GrayImage, LabelMap, Luma, PixelClassifier, Rgb, RgbImage, Segmenter};
use seg_engine::SegmentEngine;
use xpar::Backend;

/// The 1-qubit grayscale segmenter (labels 0 = class 1, 1 = class 2).
#[derive(Debug, Clone)]
pub struct IqftGraySegmenter {
    theta: f64,
    normalize: bool,
    backend: Backend,
}

impl IqftGraySegmenter {
    /// Creates a grayscale segmenter with angle `theta`.
    pub fn new(theta: f64) -> Self {
        Self {
            theta,
            normalize: true,
            backend: Backend::default(),
        }
    }

    /// The paper's Table III configuration (θ = π, threshold 0.5).
    pub fn paper_default() -> Self {
        Self::new(std::f64::consts::PI)
    }

    /// Enables or disables intensity normalisation (the Fig. 5 ablation).
    pub fn with_normalization(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Selects the execution backend for whole-image segmentation.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Routes whole-image segmentation through `engine`.
    pub fn with_engine(self, engine: SegmentEngine) -> Self {
        self.with_backend(engine.backend())
    }

    /// The engine this segmenter executes whole-image calls on.
    pub fn engine(&self) -> SegmentEngine {
        SegmentEngine::new(self.backend)
    }

    /// The configured angle θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The intensity thresholds implied by θ (eq. 15).
    pub fn thresholds(&self) -> Vec<f64> {
        thresholds_for_theta(self.theta)
    }

    /// Class probabilities `(p(class1), p(class2))` for a normalised
    /// intensity `I` (eq. 14).
    pub fn probabilities(&self, intensity: f64) -> (f64, f64) {
        let phase = intensity * self.theta;
        let (sin, cos) = phase.sin_cos();
        let p1 = ((1.0 + cos).powi(2) + sin * sin) / 4.0;
        let p2 = ((1.0 - cos).powi(2) + sin * sin) / 4.0;
        (p1, p2)
    }

    /// Classifies a normalised intensity: 0 for class 1, 1 for class 2.
    /// The boundary (`cos Iθ = 0`) is assigned to class 1, matching the
    /// arg-max-with-lowest-index rule used everywhere else.
    pub fn classify_intensity(&self, intensity: f64) -> u32 {
        let (p1, p2) = self.probabilities(intensity);
        u32::from(p2 > p1)
    }

    /// Classifies every pixel of a zero-copy grayscale view into a matching
    /// label view — the tile work unit consumed by
    /// [`SegmentEngine::segment_tiled_gray`].  Labels are identical to
    /// per-pixel [`IqftGraySegmenter::classify`] calls.
    pub fn classify_view_into(
        &self,
        view: &imaging::ImageView<'_, Luma<u8>>,
        out: &mut imaging::LabelViewMut<'_>,
    ) {
        PixelClassifier::classify_gray_view_into(self, view, out);
    }

    /// Classifies an 8-bit intensity.
    pub fn classify(&self, value: u8) -> u32 {
        let intensity = if self.normalize {
            value as f64 / 255.0
        } else {
            value as f64
        };
        self.classify_intensity(intensity)
    }
}

impl PixelClassifier for IqftGraySegmenter {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(color::luma_u8_of(pixel))
    }

    fn classify_gray_pixel(&self, pixel: Luma<u8>) -> u32 {
        self.classify(pixel.value())
    }
}

impl Segmenter for IqftGraySegmenter {
    fn name(&self) -> &str {
        "IQFT (grayscale)"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        // The paper prepares grayscale inputs with the eq. 17 weighted sum;
        // the engine applies the same conversion pixel-by-pixel.
        self.engine().segment_rgb(self, img)
    }

    fn segment_gray(&self, img: &GrayImage) -> LabelMap {
        self.engine().segment_gray(self, img)
    }
}

/// Classical threshold segmentation with an explicit set of thresholds:
/// a pixel's label is the number of thresholds below its intensity.  Used by
/// tests and the Fig. 7 experiment to show the IQFT grayscale segmenter is
/// equivalent to thresholding at the eq. 15 boundaries (modulo the 2-class
/// folding of the quantum method).
pub fn threshold_segment(img: &GrayImage, thresholds: &[f64]) -> LabelMap {
    img.map(|p| {
        let intensity = p.value() as f64 / 255.0;
        thresholds.iter().filter(|&&t| intensity > t).count() as u32
    })
}

/// Binary threshold segmentation: label 1 where the normalised intensity
/// exceeds `threshold` (exclusive), 0 otherwise.
pub fn binary_threshold_segment(img: &GrayImage, threshold: f64) -> LabelMap {
    img.map(|p| u32::from(p.value() as f64 / 255.0 > threshold))
}

/// Renders a 2-class label map back to a grayscale image (class 1 → black,
/// class 2 → white), matching how the paper displays grayscale outputs.
pub fn labels_to_gray(labels: &LabelMap) -> GrayImage {
    labels.map(|l| Luma(if l == 0 { 0 } else { 255 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn probabilities_sum_to_one_and_match_eq14() {
        let seg = IqftGraySegmenter::new(1.7 * PI);
        for i in 0..=100 {
            let intensity = i as f64 / 100.0;
            let (p1, p2) = seg.probabilities(intensity);
            assert_close(p1 + p2, 1.0, 1e-12);
            // eq. 14 simplifies to p1 = (1 + cos Iθ)/2.
            assert_close(p1, (1.0 + (intensity * seg.theta()).cos()) / 2.0, 1e-12);
        }
    }

    #[test]
    fn theta_pi_thresholds_at_one_half() {
        let seg = IqftGraySegmenter::paper_default();
        assert_eq!(seg.classify_intensity(0.2), 0);
        assert_eq!(seg.classify_intensity(0.49), 0);
        assert_eq!(seg.classify_intensity(0.51), 1);
        assert_eq!(seg.classify_intensity(0.9), 1);
        assert_eq!(seg.thresholds(), vec![0.5]);
        // 8-bit path: 127/255 < 0.5 < 128/255.
        assert_eq!(seg.classify(127), 0);
        assert_eq!(seg.classify(129), 1);
    }

    #[test]
    fn multi_threshold_band_structure_for_4pi() {
        // θ = 4π: thresholds at 1/8, 3/8, 5/8, 7/8 (eq. 16).  Intensities in
        // the alternating bands flip class.
        let seg = IqftGraySegmenter::new(4.0 * PI);
        assert_eq!(seg.classify_intensity(0.05), 0);
        assert_eq!(seg.classify_intensity(0.25), 1);
        assert_eq!(seg.classify_intensity(0.50), 0);
        assert_eq!(seg.classify_intensity(0.75), 1);
        assert_eq!(seg.classify_intensity(0.95), 0);
        assert_eq!(seg.thresholds().len(), 4);
    }

    #[test]
    fn segment_gray_separates_bright_and_dark() {
        let img = GrayImage::from_fn(10, 2, |x, _| Luma(if x < 5 { 40 } else { 220 }));
        let labels = IqftGraySegmenter::paper_default().segment_gray(&img);
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(9, 1), 1);
        assert_eq!(imaging::labels::distinct_labels(&labels), 2);
    }

    #[test]
    fn rgb_path_goes_through_eq17_luma() {
        let seg = IqftGraySegmenter::paper_default();
        let img = RgbImage::from_fn(2, 1, |x, _| {
            if x == 0 {
                imaging::Rgb::new(0, 30, 0)
            } else {
                imaging::Rgb::new(0, 250, 0)
            }
        });
        let labels = seg.segment_rgb(&img);
        // Luma of (0,30,0) ≈ 0.084 < 0.5; luma of (0,250,0) ≈ 0.70 > 0.5.
        assert_eq!(labels.get(0, 0), 0);
        assert_eq!(labels.get(1, 0), 1);
    }

    #[test]
    fn iqft_matches_explicit_thresholding_for_single_threshold() {
        // With a single threshold the 2-class IQFT output and classical
        // binary thresholding are identical (Fig. 7's claim).
        let img = GrayImage::from_fn(64, 2, |x, _| Luma((x * 4) as u8));
        for theta in [0.6 * PI, PI, 1.3 * PI] {
            let seg = IqftGraySegmenter::new(theta);
            let thresholds = seg.thresholds();
            assert_eq!(thresholds.len(), 1, "theta={theta}");
            let iqft = seg.segment_gray(&img);
            let classical = binary_threshold_segment(&img, thresholds[0]);
            assert_eq!(iqft, classical, "theta={theta}");
        }
    }

    #[test]
    fn iqft_folds_multi_threshold_bands_mod_two() {
        // With several thresholds the IQFT labels equal the band index mod 2.
        let img = GrayImage::from_fn(128, 1, |x, _| Luma((x * 2) as u8));
        let theta = 4.0 * PI;
        let seg = IqftGraySegmenter::new(theta);
        let bands = threshold_segment(&img, &seg.thresholds());
        let iqft = seg.segment_gray(&img);
        for (band, label) in bands.pixels().zip(iqft.pixels()) {
            assert_eq!(band % 2, *label, "band {band}");
        }
    }

    #[test]
    fn normalization_flag_changes_behaviour() {
        let seg_norm = IqftGraySegmenter::paper_default();
        let seg_raw = IqftGraySegmenter::paper_default().with_normalization(false);
        // Raw intensities (0–255) multiplied by π wrap around the circle many
        // times, so even a dark pixel can land in class 2 (odd raw values
        // give cos(vπ) = −1).
        assert_eq!(seg_norm.classify(11), 0);
        assert_eq!(seg_raw.classify(11), 1);
        assert_ne!(seg_raw.classify(11), seg_norm.classify(11));
    }

    #[test]
    fn backend_independence() {
        let img = GrayImage::from_fn(37, 11, |x, y| Luma(((x * y * 7) % 256) as u8));
        let seg = IqftGraySegmenter::new(1.5 * PI);
        let serial = seg.clone().with_backend(Backend::Serial).segment_gray(&img);
        let parallel = seg.with_backend(Backend::Threads(4)).segment_gray(&img);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn view_classification_matches_whole_image_segmentation() {
        let seg = IqftGraySegmenter::new(1.5 * PI);
        let img = GrayImage::from_fn(19, 11, |x, y| Luma(((x * 17 + y * 3) % 256) as u8));
        let whole = seg.segment_gray(&img);
        let mut stitched = LabelMap::new(19, 11, u32::MAX);
        for rect in img.tile_rects(4, 6) {
            let tile = img.view(rect).unwrap();
            seg.classify_view_into(&tile, &mut stitched.view_mut(rect).unwrap());
        }
        assert_eq!(stitched, whole);
    }

    #[test]
    fn labels_to_gray_renders_binary_mask() {
        let labels = LabelMap::from_fn(3, 1, |x, _| (x % 2) as u32);
        let gray = labels_to_gray(&labels);
        assert_eq!(gray.get(0, 0).value(), 0);
        assert_eq!(gray.get(1, 0).value(), 255);
        assert_eq!(gray.get(2, 0).value(), 0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(
            IqftGraySegmenter::paper_default().name(),
            "IQFT (grayscale)"
        );
        assert_eq!(IqftGraySegmenter::paper_default().theta(), PI);
    }
}
