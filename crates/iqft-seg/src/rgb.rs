//! Algorithm 1: the IQFT-inspired RGB segmenter.
//!
//! Per pixel `(R, G, B)`:
//!
//! 1. normalise to `[0, 1]` (Algorithm 1, line 1);
//! 2. scale into phases `γ = R·θ1`, `β = G·θ2`, `α = B·θ3` (line 2);
//! 3. lift to the 8-component phase vector `F` of eq. 11 (line 3) — the
//!    expansion of the 3-qubit product state
//!    `(|0⟩+e^{iφ_2}|1⟩)(|0⟩+e^{iφ_1}|1⟩)(|0⟩+e^{iφ_0}|1⟩)`;
//! 4. multiply by the inverse-DFT matrix `W` and take `|W·F / 8|²` (line 4) —
//!    exactly the measurement distribution a real 3-qubit IQFT would produce;
//! 5. label the pixel with the arg-max basis state (line 5).
//!
//! The label alphabet is `{0, …, 7}` and the number of *occupied* labels
//! adapts to the image content (the property the paper highlights over
//! K-means, which needs `k` chosen in advance).
//!
//! # Qubit ordering ([`BitOrder`])
//!
//! The paper's eq. 8/11 and Algorithm 1 place `α` (the blue-channel phase) on
//! the most significant qubit.  That literal reading —
//! [`BitOrder::Equation11`], the default here — also reproduces the paper's
//! Table II segment counts exactly (1/3/5/6/8… and "2 (constant)" for the
//! mixed configuration), so it is what the authors' code computed.  The
//! worked example of Figs. 2–3 (`α = 2.464, β = 0.025, γ = 0.246` → basis
//! state `|100⟩`), however, names the winning state in *bit-reversed* order
//! (the literal equation yields `|001⟩` for those angles — the classic QFT
//! output-ordering subtlety).  [`BitOrder::FigureConsistent`] swaps the
//! register so the figure's label comes out verbatim; it is provided for
//! completeness and exercised in tests, while every evaluation experiment in
//! this workspace uses the default.
//!
//! # Complexity
//!
//! Because the encoded register is a *product* state, the IQFT output
//! probability factorises per qubit:
//! `P(j) = ∏_p cos²((φ_p − 2π·j·2^p/8)/2)`, so classification costs a handful
//! of trigonometric evaluations per pixel — no 8×8 matrix product is needed.
//! The matrix path is retained (and tested against the fast path and against
//! the state-vector simulator in the `quantum` crate) for validation.

use crate::theta::ThetaParams;
use imaging::{color, LabelMap, PixelClassifier, Rgb, RgbImage, Segmenter};
use quantum::{idft_matrix, phase_vector, CMatrix, Complex};
use seg_engine::SegmentEngine;
use xpar::Backend;

/// Number of basis states / possible labels of the 3-qubit algorithm.
pub const NUM_STATES: usize = 8;

/// Qubit-ordering convention used when assembling the 3-qubit register from
/// the channel phases `(γ, β, α)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BitOrder {
    /// γ (red-channel phase) is the most significant qubit.  Reproduces the
    /// paper's Figs. 2–3 worked example verbatim (the basis-state *name*
    /// `|100⟩`).
    FigureConsistent,
    /// α (blue-channel phase) is the most significant qubit, following the
    /// literal ordering of the paper's eq. 8/11 and Algorithm 1.  This is the
    /// default and matches the paper's Table II segment counts.
    #[default]
    Equation11,
}

/// The IQFT-inspired RGB segmenter (the paper's Algorithm 1).
#[derive(Debug, Clone)]
pub struct IqftRgbSegmenter {
    thetas: ThetaParams,
    normalize: bool,
    backend: Backend,
    bit_order: BitOrder,
}

impl IqftRgbSegmenter {
    /// Creates a segmenter with the given angle parameters, normalisation
    /// enabled (the paper's recommended configuration), the default parallel
    /// backend and the Algorithm-1 (eq. 11) bit order.
    pub fn new(thetas: ThetaParams) -> Self {
        Self {
            thetas,
            normalize: true,
            backend: Backend::default(),
            bit_order: BitOrder::default(),
        }
    }

    /// The paper's headline configuration: `θ1 = θ2 = θ3 = π`.
    pub fn paper_default() -> Self {
        Self::new(ThetaParams::paper_default())
    }

    /// Enables or disables the `/255` normalisation step (line 1).  Disabling
    /// it reproduces the "noisy segments" ablation of the paper's Fig. 5.
    pub fn with_normalization(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// Selects the execution backend for whole-image segmentation.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Routes whole-image segmentation through `engine` (equivalent to
    /// [`Self::with_backend`] with the engine's backend).
    pub fn with_engine(self, engine: SegmentEngine) -> Self {
        self.with_backend(engine.backend())
    }

    /// The engine this segmenter executes whole-image calls on.
    pub fn engine(&self) -> SegmentEngine {
        SegmentEngine::new(self.backend)
    }

    /// Selects the qubit-ordering convention.
    pub fn with_bit_order(mut self, bit_order: BitOrder) -> Self {
        self.bit_order = bit_order;
        self
    }

    /// The configured angle parameters.
    pub fn thetas(&self) -> ThetaParams {
        self.thetas
    }

    /// Whether intensity normalisation is enabled.
    pub fn normalizes(&self) -> bool {
        self.normalize
    }

    /// The configured qubit ordering.
    pub fn bit_order(&self) -> BitOrder {
        self.bit_order
    }

    /// Phases `[γ, β, α]` for a pixel (Algorithm 1, lines 1–2):
    /// `γ = R·θ1`, `β = G·θ2`, `α = B·θ3`.
    pub fn phases(&self, pixel: Rgb<u8>) -> [f64; 3] {
        let scale = if self.normalize { 1.0 / 255.0 } else { 1.0 };
        let r = pixel.r() as f64 * scale;
        let g = pixel.g() as f64 * scale;
        let b = pixel.b() as f64 * scale;
        [
            r * self.thetas.theta1, // γ
            g * self.thetas.theta2, // β
            b * self.thetas.theta3, // α
        ]
    }

    /// Register phases ordered most-significant-qubit-first according to the
    /// configured [`BitOrder`].
    fn register_phases(&self, gamma: f64, beta: f64, alpha: f64) -> [f64; 3] {
        match self.bit_order {
            BitOrder::FigureConsistent => [gamma, beta, alpha],
            BitOrder::Equation11 => [alpha, beta, gamma],
        }
    }

    /// The measurement probability of each basis state for the given channel
    /// phases `(γ, β, α)` — the vector `S` of Algorithm 1, line 4.
    ///
    /// Uses the per-qubit factorisation of the IQFT of a product state; see
    /// the module docs.  The result is identical (to floating-point accuracy)
    /// to [`Self::probabilities_via_matrix`].
    pub fn probabilities_from_phases(
        &self,
        gamma: f64,
        beta: f64,
        alpha: f64,
    ) -> [f64; NUM_STATES] {
        let register = self.register_phases(gamma, beta, alpha);
        let mut probs = [1.0; NUM_STATES];
        // Qubit q (0 = most significant) occupies bit position 2 - q, i.e.
        // weight 2^(2-q); its contribution to state j is
        // cos²((φ_q − 2π·j·2^(2-q)/8) / 2).
        for (q, &phi) in register.iter().enumerate() {
            let weight = 1usize << (2 - q);
            for (j, p) in probs.iter_mut().enumerate() {
                let angle = phi - 2.0 * std::f64::consts::PI * (j * weight) as f64 / 8.0;
                let c = (angle / 2.0).cos();
                *p *= c * c;
            }
        }
        probs
    }

    /// Reference implementation of Algorithm 1 line 4: builds the explicit
    /// 8-component phase vector, multiplies by the 8×8 inverse-DFT matrix and
    /// squares the amplitudes.  Slower than
    /// [`Self::probabilities_from_phases`], used for validation.
    pub fn probabilities_via_matrix(&self, gamma: f64, beta: f64, alpha: f64) -> [f64; NUM_STATES] {
        let register = self.register_phases(gamma, beta, alpha);
        let f = phase_vector(&register);
        let w: CMatrix = idft_matrix(NUM_STATES);
        let mut probs = [0.0; NUM_STATES];
        for (j, prob) in probs.iter_mut().enumerate() {
            let mut acc = Complex::ZERO;
            for (k, fk) in f.iter().enumerate() {
                acc += w.get(j, k) * *fk;
            }
            // W carries 1/√8; the phase vector is unnormalised, so divide the
            // squared amplitude by 8 (Algorithm 1 divides the raw product by 8).
            *prob = acc.norm_sqr() / NUM_STATES as f64;
        }
        probs
    }

    /// The measurement probabilities for a pixel.
    pub fn probabilities(&self, pixel: Rgb<u8>) -> [f64; NUM_STATES] {
        let [gamma, beta, alpha] = self.phases(pixel);
        self.probabilities_from_phases(gamma, beta, alpha)
    }

    /// Classifies one pixel (Algorithm 1, line 5): the index of the most
    /// probable basis state, ties broken towards the lower index.
    pub fn classify(&self, pixel: Rgb<u8>) -> u32 {
        argmax(&self.probabilities(pixel)) as u32
    }

    /// Classifies every pixel of a zero-copy sub-image view into a matching
    /// label view — the tile work unit consumed by
    /// [`SegmentEngine::segment_tiled`].  Labels are identical to
    /// per-pixel [`IqftRgbSegmenter::classify`] calls, so any tile
    /// decomposition reassembles byte-identically to a whole-image pass.
    pub fn classify_view_into(
        &self,
        view: &imaging::ImageView<'_, Rgb<u8>>,
        out: &mut imaging::LabelViewMut<'_>,
    ) {
        PixelClassifier::classify_rgb_view_into(self, view, out);
    }

    /// Classifies a pixel given already-normalised channel values in `[0, 1]`
    /// (used by the Table II random-input sweep, which never materialises an
    /// image).
    pub fn classify_normalized(&self, r: f64, g: f64, b: f64) -> u32 {
        let gamma = r * self.thetas.theta1;
        let beta = g * self.thetas.theta2;
        let alpha = b * self.thetas.theta3;
        argmax(&self.probabilities_from_phases(gamma, beta, alpha)) as u32
    }
}

/// Index of the maximum element (first occurrence wins).
pub(crate) fn argmax(values: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_v = f64::MIN;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

impl PixelClassifier for IqftRgbSegmenter {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(pixel)
    }
}

impl Segmenter for IqftRgbSegmenter {
    fn name(&self) -> &str {
        "IQFT (RGB)"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        self.engine().segment_rgb(self, img)
    }

    fn segment_gray(&self, img: &imaging::GrayImage) -> LabelMap {
        // Grayscale input: replicate the intensity into all channels, as the
        // paper does when it applies the RGB algorithm to grayscale imagery.
        self.segment_rgb(&color::gray_to_rgb(img))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantum::{phase_product_state, Circuit};
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn probabilities_form_a_distribution() {
        let seg = IqftRgbSegmenter::paper_default();
        for pixel in [
            Rgb::new(0, 0, 0),
            Rgb::new(255, 255, 255),
            Rgb::new(13, 200, 77),
            Rgb::new(255, 0, 128),
        ] {
            let p = seg.probabilities(pixel);
            let sum: f64 = p.iter().sum();
            assert_close(sum, 1.0, 1e-10);
            assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-12).contains(&x)));
        }
    }

    #[test]
    fn fast_path_matches_matrix_path() {
        for bit_order in [BitOrder::FigureConsistent, BitOrder::Equation11] {
            let seg =
                IqftRgbSegmenter::new(ThetaParams::new(1.3, 2.9, 0.4)).with_bit_order(bit_order);
            for (g, b, a) in [(0.0, 0.0, 0.0), (0.7, 1.9, 2.4), (3.1, 0.2, 5.9)] {
                let fast = seg.probabilities_from_phases(g, b, a);
                let matrix = seg.probabilities_via_matrix(g, b, a);
                for (x, y) in fast.iter().zip(matrix.iter()) {
                    assert_close(*x, *y, 1e-10);
                }
            }
        }
    }

    #[test]
    fn black_pixel_maps_to_state_zero() {
        // All phases are 0, so the product state is the uniform real
        // superposition, whose IQFT is exactly |000⟩.
        let seg = IqftRgbSegmenter::paper_default();
        let p = seg.probabilities(Rgb::new(0, 0, 0));
        assert_close(p[0], 1.0, 1e-10);
        assert_eq!(seg.classify(Rgb::new(0, 0, 0)), 0);
    }

    #[test]
    fn probabilities_match_true_iqft_circuit() {
        // The classical pipeline must reproduce the measurement distribution
        // of a genuine 3-qubit IQFT applied to the phase-encoded register.
        let seg = IqftRgbSegmenter::paper_default();
        let pixel = Rgb::new(170, 40, 220);
        let [gamma, beta, alpha] = seg.phases(pixel);
        // Default bit order puts α on the most significant qubit (eq. 11).
        let mut state = phase_product_state(&[alpha, beta, gamma]);
        Circuit::iqft(3).apply(&mut state);
        let classical = seg.probabilities(pixel);
        for (c, q) in classical.iter().zip(state.probabilities()) {
            assert_close(*c, q, 1e-10);
        }
        assert_eq!(seg.classify(pixel) as usize, state.most_probable());
    }

    #[test]
    fn paper_fig2_example_winning_state() {
        // The paper's running example (Figs. 2–3): α = 2.464, β = 0.025,
        // γ = 0.246 is reported as "most similar to basis vector |100⟩".
        // Under the literal eq. 11 ordering (the default) the winner is the
        // bit-reversed name |001⟩ = label 1; reading the register in the
        // figure-consistent order yields label 4 = |100⟩ verbatim.  The
        // winning probability (~0.87) is identical either way.
        let eq11 = IqftRgbSegmenter::paper_default();
        let pe = eq11.probabilities_from_phases(0.246, 0.025, 2.464);
        assert_eq!(argmax(&pe), 1);
        let fig = IqftRgbSegmenter::paper_default().with_bit_order(BitOrder::FigureConsistent);
        let pf = fig.probabilities_from_phases(0.246, 0.025, 2.464);
        assert_eq!(argmax(&pf), 4);
        // The figure-consistent reading reproduces the strongly dominant bar
        // of Fig. 3 (probability ≈ 0.87 at the winning state).
        assert!(pf[4] > 0.8);
        let mut sorted = pf.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert!(sorted[0] > sorted[1] + 0.3);
    }

    #[test]
    fn both_bit_orders_are_proper_distributions() {
        let eq11 = IqftRgbSegmenter::paper_default();
        let fig = IqftRgbSegmenter::paper_default().with_bit_order(BitOrder::FigureConsistent);
        assert_eq!(eq11.bit_order(), BitOrder::Equation11);
        assert_eq!(fig.bit_order(), BitOrder::FigureConsistent);
        for (g, b, a) in [(0.3, 1.1, 2.0), (2.9, 0.4, 1.7), (0.0, 3.0, 0.5)] {
            for seg in [&fig, &eq11] {
                let p = seg.probabilities_from_phases(g, b, a);
                assert_close(p.iter().sum::<f64>(), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn theta_pi_over_4_collapses_to_one_segment() {
        // Table II: θ1 = θ2 = θ3 = π/4 produces a single segment.
        let seg = IqftRgbSegmenter::new(ThetaParams::uniform(PI / 4.0));
        let img = RgbImage::from_fn(16, 16, |x, y| {
            Rgb::new((x * 16) as u8, (y * 16) as u8, ((x + y) * 8) as u8)
        });
        let labels = seg.segment_rgb(&img);
        assert_eq!(imaging::labels::distinct_labels(&labels), 1);
        assert_eq!(labels.get(0, 0), 0);
    }

    #[test]
    fn classify_normalized_matches_classify() {
        let seg = IqftRgbSegmenter::paper_default();
        for (r, g, b) in [(10u8, 20u8, 30u8), (200, 100, 50), (255, 255, 0)] {
            let via_pixel = seg.classify(Rgb::new(r, g, b));
            let via_norm =
                seg.classify_normalized(r as f64 / 255.0, g as f64 / 255.0, b as f64 / 255.0);
            assert_eq!(via_pixel, via_norm);
        }
    }

    #[test]
    fn disabling_normalization_changes_the_result() {
        let with = IqftRgbSegmenter::paper_default();
        let without = IqftRgbSegmenter::paper_default().with_normalization(false);
        assert!(with.normalizes());
        assert!(!without.normalizes());
        let img = RgbImage::from_fn(8, 8, |x, y| {
            Rgb::new((x * 30 + 3) as u8, (y * 30 + 5) as u8, 128)
        });
        assert_ne!(with.segment_rgb(&img), without.segment_rgb(&img));
    }

    #[test]
    fn segmentation_is_backend_independent() {
        let img = RgbImage::from_fn(31, 17, |x, y| {
            Rgb::new((x * 8) as u8, (y * 15) as u8, ((x * y) % 256) as u8)
        });
        let serial = IqftRgbSegmenter::paper_default()
            .with_backend(Backend::Serial)
            .segment_rgb(&img);
        for backend in [Backend::Threads(2), Backend::Threads(0), Backend::Rayon] {
            let par = IqftRgbSegmenter::paper_default()
                .with_backend(backend)
                .segment_rgb(&img);
            assert_eq!(par, serial, "backend {backend:?}");
        }
    }

    #[test]
    fn labels_are_always_in_range() {
        let seg = IqftRgbSegmenter::new(ThetaParams::uniform(2.0 * PI));
        let img = RgbImage::from_fn(64, 4, |x, y| {
            Rgb::new((x * 4) as u8, (255 - x * 3) as u8, (y * 60) as u8)
        });
        let labels = seg.segment_rgb(&img);
        assert!(labels.pixels().all(|&l| l < NUM_STATES as u32));
    }

    #[test]
    fn grayscale_input_uses_channel_replication() {
        let seg = IqftRgbSegmenter::paper_default();
        let gray = imaging::GrayImage::from_fn(4, 4, |x, _| imaging::Luma((x * 80) as u8));
        let direct = seg.segment_gray(&gray);
        let via_rgb = seg.segment_rgb(&color::gray_to_rgb(&gray));
        assert_eq!(direct, via_rgb);
    }

    #[test]
    fn view_classification_matches_whole_image_segmentation() {
        let seg = IqftRgbSegmenter::paper_default();
        let img = RgbImage::from_fn(21, 13, |x, y| {
            Rgb::new((x * 12) as u8, (y * 19) as u8, ((x + y) * 9) as u8)
        });
        let whole = seg.segment_rgb(&img);
        let mut stitched = imaging::LabelMap::new(21, 13, u32::MAX);
        for rect in img.tile_rects(6, 5) {
            let tile = img.view(rect).unwrap();
            seg.classify_view_into(&tile, &mut stitched.view_mut(rect).unwrap());
        }
        assert_eq!(stitched, whole);
    }

    #[test]
    fn argmax_prefers_first_maximum() {
        assert_eq!(argmax(&[0.1, 0.5, 0.5, 0.2]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn name_and_accessors() {
        let seg = IqftRgbSegmenter::paper_default();
        assert_eq!(seg.name(), "IQFT (RGB)");
        assert_close(seg.thetas().theta1, PI, 1e-12);
    }
}
