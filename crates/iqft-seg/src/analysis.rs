//! Segment-count analysis (the paper's Table II experiment).
//!
//! The paper probes how the angle parameters bound the number of reachable
//! segments by classifying 100,000 random normalised RGB triples for each θ
//! configuration and counting the distinct labels that appear.

use crate::rgb::{IqftRgbSegmenter, NUM_STATES};
use crate::theta::ThetaParams;
use imaging::{labels, LabelMap};

/// Classifies `samples` uniformly random normalised RGB triples with the
/// given angle configuration and returns the set of labels that occurred
/// (as a fixed-size occupancy mask) plus the count of distinct labels.
///
/// This is the Table II measurement; `seed` makes it reproducible.
pub fn segment_occupancy_for_theta(
    thetas: ThetaParams,
    samples: usize,
    seed: u64,
) -> ([bool; NUM_STATES], usize) {
    // A tiny xorshift generator keeps this crate free of a rand dependency;
    // the quality requirements here are minimal (uniform-ish coverage of the
    // unit cube).
    let mut state = seed | 1;
    let mut next_unit = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (v >> 11) as f64 / (1u64 << 53) as f64
    };
    let seg = IqftRgbSegmenter::new(thetas);
    let mut occupied = [false; NUM_STATES];
    for _ in 0..samples {
        let r = next_unit();
        let g = next_unit();
        let b = next_unit();
        let label = seg.classify_normalized(r, g, b) as usize;
        occupied[label] = true;
    }
    let count = occupied.iter().filter(|&&o| o).count();
    (occupied, count)
}

/// The maximum number of segments reachable with angle configuration
/// `thetas`, estimated from `samples` random inputs (the paper's Table II).
pub fn max_segments_for_theta(thetas: ThetaParams, samples: usize, seed: u64) -> usize {
    segment_occupancy_for_theta(thetas, samples, seed).1
}

/// Number of distinct segments present in a segmentation output.
pub fn count_segments(segmentation: &LabelMap) -> usize {
    labels::distinct_labels(segmentation)
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentCountRow {
    /// Human-readable θ description.
    pub label: String,
    /// The angle configuration.
    pub thetas: ThetaParams,
    /// Measured maximum number of segments.
    pub max_segments: usize,
}

/// Regenerates the paper's Table II: the θ sweep
/// `π/4, π/2, 3π/4, π, 5π/4, 3π/2, 7π/4, 2π` plus the mixed configuration.
pub fn table2_rows(samples: usize, seed: u64) -> Vec<SegmentCountRow> {
    use std::f64::consts::PI;
    let uniform: [(f64, &str); 8] = [
        (PI / 4.0, "π/4"),
        (PI / 2.0, "π/2"),
        (3.0 * PI / 4.0, "3π/4"),
        (PI, "π"),
        (5.0 * PI / 4.0, "5π/4"),
        (3.0 * PI / 2.0, "3π/2"),
        (7.0 * PI / 4.0, "7π/4"),
        (2.0 * PI, "2π"),
    ];
    let mut rows: Vec<SegmentCountRow> = uniform
        .into_iter()
        .map(|(theta, label)| {
            let thetas = ThetaParams::uniform(theta);
            SegmentCountRow {
                label: format!("θ1=θ2=θ3={label}"),
                thetas,
                max_segments: max_segments_for_theta(thetas, samples, seed),
            }
        })
        .collect();
    let mixed = ThetaParams::mixed();
    rows.push(SegmentCountRow {
        label: "θ1=π/4, θ2=π/2, θ3=π".to_string(),
        thetas: mixed,
        max_segments: max_segments_for_theta(mixed, samples, seed),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const SAMPLES: usize = 20_000;

    #[test]
    fn quarter_pi_reaches_a_single_segment() {
        assert_eq!(
            max_segments_for_theta(ThetaParams::uniform(PI / 4.0), SAMPLES, 1),
            1
        );
    }

    #[test]
    fn segment_count_is_monotone_in_theta() {
        // Larger angles open up more of the unit circle, so the reachable
        // label count can only grow (Table II's qualitative trend).
        let mut prev = 0usize;
        for i in 1..=8 {
            let theta = i as f64 * PI / 4.0;
            let count = max_segments_for_theta(ThetaParams::uniform(theta), SAMPLES, 7);
            assert!(
                count >= prev,
                "θ={theta}: count {count} dropped below {prev}"
            );
            prev = count;
        }
        assert!(prev <= NUM_STATES);
    }

    #[test]
    fn two_pi_saturates_all_eight_segments() {
        // Table II: θ = 5π/4 and above reach all 8 segments.
        assert_eq!(
            max_segments_for_theta(ThetaParams::uniform(2.0 * PI), SAMPLES, 3),
            8
        );
        assert_eq!(
            max_segments_for_theta(ThetaParams::uniform(3.0 * PI / 2.0), SAMPLES, 3),
            8
        );
    }

    #[test]
    fn mixed_configuration_reaches_exactly_two_segments() {
        // Table II's final row: θ1=π/4, θ2=π/2, θ3=π → 2 segments (constant).
        assert_eq!(max_segments_for_theta(ThetaParams::mixed(), SAMPLES, 11), 2);
    }

    #[test]
    fn occupancy_mask_matches_count_and_is_seed_deterministic() {
        let thetas = ThetaParams::uniform(PI);
        let (mask, count) = segment_occupancy_for_theta(thetas, SAMPLES, 42);
        assert_eq!(mask.iter().filter(|&&o| o).count(), count);
        let (mask2, count2) = segment_occupancy_for_theta(thetas, SAMPLES, 42);
        assert_eq!(mask, mask2);
        assert_eq!(count, count2);
        // Label 0 (dark colours) is always reachable.
        assert!(mask[0]);
    }

    #[test]
    fn count_segments_counts_distinct_labels() {
        let m = LabelMap::from_fn(4, 1, |x, _| (x % 3) as u32);
        assert_eq!(count_segments(&m), 3);
    }

    #[test]
    fn table2_rows_cover_all_configurations() {
        let rows = table2_rows(5_000, 5);
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].max_segments, 1);
        assert!(rows[7].max_segments >= 7);
        assert_eq!(rows[8].max_segments, 2);
        assert!(rows.iter().all(|r| r.max_segments <= NUM_STATES));
    }
}
