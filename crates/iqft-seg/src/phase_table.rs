//! An eager, fully-precomputed phase→probability table for Algorithm 1.
//!
//! [`LutRgbSegmenter`](crate::lut::LutRgbSegmenter) memoises colours *lazily*:
//! the first frame of a stream still pays full statevector math for every
//! distinct colour it contains.  [`PhaseTable`] removes that warm-up entirely
//! by materialising, once per [`ThetaParams`], every per-channel factor the
//! IQFT measurement distribution can ever need.
//!
//! # Why 3 × 256 entries suffice
//!
//! The encoded register is a *product* state, so the measurement probability
//! of basis state `j` factorises per qubit (see [`crate::rgb`]):
//!
//! ```text
//! P(j) = ∏_q cos²((φ_q − 2π · j · 2^(2−q) / 8) / 2)
//! ```
//!
//! Each factor depends only on one channel's 8-bit value (through its phase
//! `φ_q`) and on `j`.  A table of `3 registers × 256 channel values × 8
//! states` therefore captures the entire joint distribution: steady-state
//! classification is **three table lookups** (one 8-vector per channel), an
//! 8-way product and an arg-max — no trigonometry, no statevector math.
//!
//! # Byte-identity with the exact path
//!
//! Table entries are computed with *literally the same* float operations (and
//! the same multiplication order) as
//! [`IqftRgbSegmenter::probabilities_from_phases`], so the resulting labels
//! are bit-for-bit identical to the exact segmenter — not merely close.  The
//! tests enforce this exhaustively over every per-channel value and verify
//! the table against the `quantum` crate's inverse-DFT matrix
//! ([`quantum::idft_matrix`], the `W` of the paper's eq. 11).
//!
//! The table costs `3 · 256 · 8` f64s (48 KiB) and ~6k cosine evaluations to
//! build — amortised over a single image it is already a win, and the
//! `iqft-pipeline` crate shares one table across a whole batched stream.

use crate::rgb::{argmax, BitOrder, IqftRgbSegmenter, NUM_STATES};
use crate::theta::ThetaParams;
use imaging::{LabelMap, PixelClassifier, Rgb, RgbImage, Segmenter};
use seg_engine::SegmentEngine;

/// Number of distinct values an 8-bit channel can take.
const CHANNEL_VALUES: usize = 256;

/// A fully-precomputed per-channel phase→probability-factor table for the
/// 3-qubit RGB segmenter.
///
/// Construction is eager: [`PhaseTable::from_segmenter`] evaluates every
/// factor up front, so [`PhaseTable::classify`] never computes a cosine.
/// Output labels are byte-identical to the wrapped [`IqftRgbSegmenter`] (see
/// the [module docs](self) for why this holds exactly, not approximately).
#[derive(Debug, Clone)]
pub struct PhaseTable {
    /// `factors[q][v][j]` — the probability factor contributed to basis
    /// state `j` by register qubit `q` (0 = most significant) when the
    /// channel feeding that qubit has 8-bit value `v`.
    factors: Vec<[f64; NUM_STATES]>,
    /// For each register position, which RGB channel index (0/1/2) feeds it.
    channel_of_qubit: [usize; 3],
    thetas: ThetaParams,
    normalize: bool,
    bit_order: BitOrder,
    engine: SegmentEngine,
}

impl PhaseTable {
    /// Builds the table for `segmenter`'s exact configuration (θ parameters,
    /// normalisation flag and qubit ordering).
    pub fn from_segmenter(segmenter: &IqftRgbSegmenter) -> Self {
        let thetas = segmenter.thetas();
        let bit_order = segmenter.bit_order();
        // Register position q=0 is the most significant qubit.  Under the
        // paper's eq. 11 ordering the blue-channel phase α leads; the
        // figure-consistent ordering leads with the red-channel phase γ.
        let channel_of_qubit = match bit_order {
            BitOrder::Equation11 => [2, 1, 0],
            BitOrder::FigureConsistent => [0, 1, 2],
        };
        let theta_of_channel = thetas.as_array();
        let scale = if segmenter.normalizes() {
            1.0 / 255.0
        } else {
            1.0
        };
        let mut factors = vec![[0.0; NUM_STATES]; 3 * CHANNEL_VALUES];
        for q in 0..3 {
            let theta = theta_of_channel[channel_of_qubit[q]];
            let weight = 1usize << (2 - q);
            for v in 0..CHANNEL_VALUES {
                // Identical arithmetic to IqftRgbSegmenter::phases followed by
                // probabilities_from_phases — this is what makes the table
                // byte-identical to the exact path rather than merely close.
                let phi = v as f64 * scale * theta;
                let entry = &mut factors[q * CHANNEL_VALUES + v];
                for (j, slot) in entry.iter_mut().enumerate() {
                    let angle = phi - 2.0 * std::f64::consts::PI * (j * weight) as f64 / 8.0;
                    let c = (angle / 2.0).cos();
                    *slot = c * c;
                }
            }
        }
        Self {
            factors,
            channel_of_qubit,
            thetas,
            normalize: segmenter.normalizes(),
            bit_order,
            engine: segmenter.engine(),
        }
    }

    /// Builds the table for the given angles with the default configuration
    /// (normalisation on, eq. 11 qubit ordering).
    pub fn new(thetas: ThetaParams) -> Self {
        Self::from_segmenter(&IqftRgbSegmenter::new(thetas))
    }

    /// The paper's headline configuration (`θ1 = θ2 = θ3 = π`), precomputed.
    pub fn paper_default() -> Self {
        Self::from_segmenter(&IqftRgbSegmenter::paper_default())
    }

    /// Routes whole-image segmentation through `engine`.
    pub fn with_engine(mut self, engine: SegmentEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the execution backend for whole-image segmentation.
    pub fn with_backend(self, backend: xpar::Backend) -> Self {
        self.with_engine(SegmentEngine::new(backend))
    }

    /// The engine whole-image calls execute on.
    pub fn engine(&self) -> SegmentEngine {
        self.engine
    }

    /// The angle parameters the table was built for.
    pub fn thetas(&self) -> ThetaParams {
        self.thetas
    }

    /// Whether the `/255` normalisation step was baked into the table.
    pub fn normalizes(&self) -> bool {
        self.normalize
    }

    /// The qubit ordering the table was built for.
    pub fn bit_order(&self) -> BitOrder {
        self.bit_order
    }

    /// Number of precomputed factor vectors (3 registers × 256 values).
    pub fn entries(&self) -> usize {
        self.factors.len()
    }

    /// The factor vector for register qubit `q` at channel value `v` (also
    /// the source data the quantized table in [`crate::quant`] is derived
    /// from).
    pub(crate) fn factor(&self, q: usize, v: u8) -> &[f64; NUM_STATES] {
        &self.factors[q * CHANNEL_VALUES + v as usize]
    }

    /// The register-position → RGB-channel mapping the table was built with
    /// (shared with the quantized table so both index pixels identically).
    pub(crate) fn channel_of_qubit(&self) -> [usize; 3] {
        self.channel_of_qubit
    }

    /// The measurement probability of each basis state for `pixel` —
    /// bit-identical to [`IqftRgbSegmenter::probabilities`] for the
    /// configuration the table was built from.
    pub fn probabilities(&self, pixel: Rgb<u8>) -> [f64; NUM_STATES] {
        let rgb = pixel.0;
        let t0 = self.factor(0, rgb[self.channel_of_qubit[0]]);
        let t1 = self.factor(1, rgb[self.channel_of_qubit[1]]);
        let t2 = self.factor(2, rgb[self.channel_of_qubit[2]]);
        let mut probs = [1.0; NUM_STATES];
        // Multiply in ascending register order, exactly as the exact path
        // folds its per-qubit factors, so every intermediate f64 matches.
        for (j, p) in probs.iter_mut().enumerate() {
            *p *= t0[j];
            *p *= t1[j];
            *p *= t2[j];
        }
        probs
    }

    /// Classifies one pixel via three table lookups: the arg-max basis state
    /// of [`PhaseTable::probabilities`], ties broken towards the lower index
    /// (the same rule as the exact segmenter).
    pub fn classify(&self, pixel: Rgb<u8>) -> u32 {
        argmax(&self.probabilities(pixel)) as u32
    }

    /// Classifies every pixel of a zero-copy sub-image view into a matching
    /// label view — the tile work unit consumed by
    /// [`SegmentEngine::segment_tiled`].  Labels are identical to per-pixel
    /// [`PhaseTable::classify`] calls (and therefore byte-identical to the
    /// exact path), so any tile decomposition reassembles exactly.
    pub fn classify_view_into(
        &self,
        view: &imaging::ImageView<'_, Rgb<u8>>,
        out: &mut imaging::LabelViewMut<'_>,
    ) {
        PixelClassifier::classify_rgb_view_into(self, view, out);
    }
}

impl PixelClassifier for PhaseTable {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(pixel)
    }
}

impl Segmenter for PhaseTable {
    fn name(&self) -> &str {
        "IQFT (RGB, phase-table)"
    }

    fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        self.engine.segment_rgb(self, img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_classification_over_every_channel_value() {
        // All 256 × 3 per-channel values, swept one channel at a time with
        // the other two held at assorted anchors.
        let exact = IqftRgbSegmenter::paper_default();
        let table = PhaseTable::from_segmenter(&exact);
        for v in 0..=255u8 {
            for anchor in [0u8, 77, 200] {
                for pixel in [
                    Rgb::new(v, anchor, anchor),
                    Rgb::new(anchor, v, anchor),
                    Rgb::new(anchor, anchor, v),
                ] {
                    assert_eq!(table.classify(pixel), exact.classify(pixel), "{pixel:?}");
                }
            }
        }
    }

    #[test]
    fn probabilities_are_bit_identical_to_exact_path() {
        for (thetas, bit_order, normalize) in [
            (ThetaParams::paper_default(), BitOrder::Equation11, true),
            (ThetaParams::mixed(), BitOrder::Equation11, true),
            (
                ThetaParams::new(1.3, 2.9, 0.4),
                BitOrder::FigureConsistent,
                true,
            ),
            (ThetaParams::uniform(5.5), BitOrder::Equation11, false),
        ] {
            let exact = IqftRgbSegmenter::new(thetas)
                .with_bit_order(bit_order)
                .with_normalization(normalize);
            let table = PhaseTable::from_segmenter(&exact);
            for pixel in [
                Rgb::new(0, 0, 0),
                Rgb::new(255, 255, 255),
                Rgb::new(13, 200, 77),
                Rgb::new(254, 1, 128),
            ] {
                let p_table = table.probabilities(pixel);
                let p_exact = exact.probabilities(pixel);
                for (a, b) in p_table.iter().zip(p_exact.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{pixel:?} ({thetas:?})");
                }
            }
        }
    }

    #[test]
    fn dense_rgb_grid_is_byte_identical() {
        // A 256×256 grid over (r, g) with b varying deterministically — a
        // broad joint sweep on top of the per-channel exhaustive test.
        let exact = IqftRgbSegmenter::new(ThetaParams::uniform(2.0 * std::f64::consts::PI));
        let table = PhaseTable::from_segmenter(&exact);
        for r in (0..256usize).step_by(5) {
            for g in 0..256usize {
                let b = (r * 31 + g * 17) % 256;
                let pixel = Rgb::new(r as u8, g as u8, b as u8);
                assert_eq!(table.classify(pixel), exact.classify(pixel), "{pixel:?}");
            }
        }
    }

    #[test]
    fn agrees_with_quantum_idft_matrix() {
        // The table must reproduce the measurement distribution of the
        // genuine inverse-DFT matrix (quantum::idft_matrix, the paper's W) to
        // floating-point accuracy.
        let exact = IqftRgbSegmenter::paper_default();
        let table = PhaseTable::from_segmenter(&exact);
        for pixel in [Rgb::new(170, 40, 220), Rgb::new(3, 250, 99)] {
            let [gamma, beta, alpha] = exact.phases(pixel);
            let via_matrix = exact.probabilities_via_matrix(gamma, beta, alpha);
            for (t, m) in table.probabilities(pixel).iter().zip(via_matrix.iter()) {
                assert!((t - m).abs() < 1e-10, "{t} vs {m}");
            }
        }
    }

    #[test]
    fn whole_image_segmentation_matches_exact_segmenter() {
        let img = RgbImage::from_fn(41, 29, |x, y| {
            Rgb::new((x * 6) as u8, (y * 9) as u8, ((x * y) % 256) as u8)
        });
        let exact = IqftRgbSegmenter::paper_default();
        let table = PhaseTable::paper_default();
        assert_eq!(table.segment_rgb(&img), exact.segment_rgb(&img));
        // And across engines.
        for engine in [
            SegmentEngine::serial(),
            SegmentEngine::with_threads(2),
            SegmentEngine::with_threads(0),
        ] {
            assert_eq!(
                PhaseTable::paper_default()
                    .with_engine(engine)
                    .segment_rgb(&img),
                exact.segment_rgb(&img)
            );
        }
    }

    #[test]
    fn view_classification_matches_whole_image_segmentation() {
        let table = PhaseTable::paper_default();
        let img = RgbImage::from_fn(33, 14, |x, y| {
            Rgb::new((x * 8) as u8, (y * 18) as u8, ((x * y) % 256) as u8)
        });
        let whole = table.segment_rgb(&img);
        let mut stitched = imaging::LabelMap::new(33, 14, u32::MAX);
        for rect in img.tile_rects(10, 4) {
            let tile = img.view(rect).unwrap();
            table.classify_view_into(&tile, &mut stitched.view_mut(rect).unwrap());
        }
        assert_eq!(stitched, whole);
    }

    #[test]
    fn accessors_and_name() {
        let table = PhaseTable::paper_default();
        assert_eq!(table.name(), "IQFT (RGB, phase-table)");
        assert_eq!(table.entries(), 3 * 256);
        assert!(table.normalizes());
        assert_eq!(table.bit_order(), BitOrder::Equation11);
        assert!((table.thetas().theta1 - std::f64::consts::PI).abs() < 1e-12);
        let serial = PhaseTable::new(ThetaParams::paper_default())
            .with_backend(xpar::Backend::Serial)
            .engine();
        assert_eq!(serial, SegmentEngine::serial());
    }
}
