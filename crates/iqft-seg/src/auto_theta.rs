//! Per-image θ selection (the paper's Fig. 10 adjustment).
//!
//! The paper notes that the fixed θ = π used in its headline comparison fails
//! on ~1.4% of PASCAL VOC images, and that adjusting θ per image (its Fig. 10
//! shows θ = 3π/4 rescuing such a case) recovers the quality.  This module
//! implements that adjustment as a small search over candidate angles with a
//! pluggable scoring function:
//!
//! * [`AutoThetaSearch::best_by`] — caller-supplied score (the experiments
//!   crate passes ground-truth mIOU, reproducing Fig. 10's oracle adjustment);
//! * [`AutoThetaSearch::best_unsupervised`] — a label-balance × contrast
//!   criterion that needs no ground truth, provided as the deployable variant.

use crate::foreground::{reduce_to_foreground, ForegroundPolicy};
use crate::rgb::IqftRgbSegmenter;
use crate::theta::ThetaParams;
use imaging::{color, labels, LabelMap, RgbImage, Segmenter};
use seg_engine::SegmentEngine;
use std::f64::consts::PI;

/// Result of a θ search.
#[derive(Debug, Clone)]
pub struct ThetaSearchResult {
    /// The winning uniform angle.
    pub theta: f64,
    /// The score the winning angle achieved.
    pub score: f64,
    /// The segmentation produced by the winning angle.
    pub labels: LabelMap,
    /// Scores for every candidate, in candidate order.
    pub candidate_scores: Vec<(f64, f64)>,
}

/// A search over uniform θ candidates.
#[derive(Debug, Clone)]
pub struct AutoThetaSearch {
    candidates: Vec<f64>,
    engine: SegmentEngine,
}

impl Default for AutoThetaSearch {
    fn default() -> Self {
        Self::new(Self::default_candidates())
    }
}

impl AutoThetaSearch {
    /// Creates a search over the given uniform-θ candidates.
    pub fn new(candidates: Vec<f64>) -> Self {
        assert!(!candidates.is_empty(), "candidate list must not be empty");
        Self {
            candidates,
            engine: SegmentEngine::default(),
        }
    }

    /// Executes each candidate's segmentation on `engine`.
    pub fn with_engine(mut self, engine: SegmentEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The default candidate grid: `π/2, 3π/4, π, 5π/4, 3π/2, 7π/4, 2π`
    /// (the grid spanned by the paper's Table I/II discussion).
    pub fn default_candidates() -> Vec<f64> {
        vec![
            PI / 2.0,
            3.0 * PI / 4.0,
            PI,
            5.0 * PI / 4.0,
            3.0 * PI / 2.0,
            7.0 * PI / 4.0,
            2.0 * PI,
        ]
    }

    /// The candidate angles.
    pub fn candidates(&self) -> &[f64] {
        &self.candidates
    }

    /// Runs the search, scoring each candidate's segmentation with `score`
    /// (higher is better).  Ties go to the earlier candidate.
    pub fn best_by<F>(&self, image: &RgbImage, mut score: F) -> ThetaSearchResult
    where
        F: FnMut(f64, &LabelMap) -> f64,
    {
        let mut best: Option<ThetaSearchResult> = None;
        let mut candidate_scores = Vec::with_capacity(self.candidates.len());
        for &theta in &self.candidates {
            let seg = IqftRgbSegmenter::new(ThetaParams::uniform(theta)).with_engine(self.engine);
            let labels = seg.segment_rgb(image);
            let s = score(theta, &labels);
            candidate_scores.push((theta, s));
            let better = match &best {
                None => true,
                Some(b) => s > b.score,
            };
            if better {
                best = Some(ThetaSearchResult {
                    theta,
                    score: s,
                    labels,
                    candidate_scores: Vec::new(),
                });
            }
        }
        let mut result = best.expect("at least one candidate");
        result.candidate_scores = candidate_scores;
        result
    }

    /// Unsupervised search: scores each candidate by the product of
    /// (a) foreground/background balance of the binarised output and
    /// (b) the luminance contrast between the two sides.  Degenerate
    /// single-segment outputs score zero.
    pub fn best_unsupervised(&self, image: &RgbImage) -> ThetaSearchResult {
        self.best_by(image, |_, seg| unsupervised_score(image, seg))
    }
}

/// Balance × contrast score of a segmentation against its source image.
///
/// * balance: `4·f·(1−f)` where `f` is the foreground fraction after the
///   default binarisation — 1.0 for an even split, 0 for a degenerate one;
/// * contrast: absolute difference of mean luminance between foreground and
///   background.
pub fn unsupervised_score(image: &RgbImage, segmentation: &LabelMap) -> f64 {
    if labels::distinct_labels(segmentation) < 2 {
        return 0.0;
    }
    let binary = reduce_to_foreground(
        segmentation,
        ForegroundPolicy::LargestIsBackground,
        Some(image),
        None,
    );
    let f = labels::label_fraction(&binary, 1);
    let balance = 4.0 * f * (1.0 - f);
    let mut sum_fg = 0.0;
    let mut n_fg = 0usize;
    let mut sum_bg = 0.0;
    let mut n_bg = 0usize;
    for (&l, &p) in binary.as_slice().iter().zip(image.as_slice().iter()) {
        let y = color::luma_of(p);
        if l == 1 {
            sum_fg += y;
            n_fg += 1;
        } else if l == 0 {
            sum_bg += y;
            n_bg += 1;
        }
    }
    if n_fg == 0 || n_bg == 0 {
        return 0.0;
    }
    let contrast = (sum_fg / n_fg as f64 - sum_bg / n_bg as f64).abs();
    balance * contrast
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;

    /// An image that θ = π over-segments into a single class but θ = 3π/4
    /// separates: a dim object (intensity ~0.55–0.6) on a brighter background
    /// (~0.95) — both above the 0.5 threshold of θ = π, straddling the 0.667
    /// threshold of θ = 3π/4.
    fn dim_object_scene() -> (RgbImage, LabelMap) {
        let img = RgbImage::from_fn(32, 32, |x, y| {
            let inside = (8..24).contains(&x) && (8..24).contains(&y);
            if inside {
                Rgb::new(145, 145, 145)
            } else {
                Rgb::new(242, 242, 242)
            }
        });
        let gt = LabelMap::from_fn(32, 32, |x, y| {
            u32::from((8..24).contains(&x) && (8..24).contains(&y))
        });
        (img, gt)
    }

    #[test]
    fn default_candidates_cover_the_paper_grid() {
        let search = AutoThetaSearch::default();
        assert_eq!(search.candidates().len(), 7);
        assert!(search.candidates().contains(&PI));
        assert!(search
            .candidates()
            .iter()
            .any(|&t| (t - 3.0 * PI / 4.0).abs() < 1e-12));
    }

    #[test]
    fn oracle_style_search_prefers_a_theta_that_separates_the_object() {
        let (img, gt) = dim_object_scene();
        // Score = pixel agreement with ground truth after binarisation.
        let search = AutoThetaSearch::default();
        let result = search.best_by(&img, |_, seg| {
            let bin = reduce_to_foreground(seg, ForegroundPolicy::Oracle, None, Some(&gt));
            let agree = bin
                .as_slice()
                .iter()
                .zip(gt.as_slice().iter())
                .filter(|(a, b)| a == b)
                .count();
            agree as f64 / gt.len() as f64
        });
        // θ = π cannot separate the two bright regions (both < 0.5 threshold
        // is false for both), so the winner must be a different angle and the
        // winning agreement should be essentially perfect.
        assert!((result.theta - PI).abs() > 1e-9, "π should not win");
        assert!(result.score > 0.99, "score {}", result.score);
        assert_eq!(result.candidate_scores.len(), 7);
        assert_eq!(imaging::labels::distinct_labels(&result.labels), 2);
    }

    #[test]
    fn unsupervised_search_also_recovers_the_object() {
        let (img, gt) = dim_object_scene();
        let result = AutoThetaSearch::default().best_unsupervised(&img);
        assert!(result.score > 0.0);
        // The winning segmentation separates object from background: the
        // object pixels carry a different label than the corner pixels.
        let obj = result.labels.get(16, 16);
        let corner = result.labels.get(0, 0);
        assert_ne!(obj, corner);
        // And it matches the ground truth region shape.
        let bin = reduce_to_foreground(
            &result.labels,
            ForegroundPolicy::LargestIsBackground,
            Some(&img),
            None,
        );
        let agree = bin
            .as_slice()
            .iter()
            .zip(gt.as_slice().iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(agree as f64 / gt.len() as f64 > 0.99);
    }

    #[test]
    fn degenerate_segmentations_score_zero() {
        let img = RgbImage::new(8, 8, Rgb::new(100, 100, 100));
        let seg = LabelMap::new(8, 8, 0);
        assert_eq!(unsupervised_score(&img, &seg), 0.0);
    }

    #[test]
    fn score_prefers_balanced_high_contrast_splits() {
        let img = RgbImage::from_fn(10, 1, |x, _| {
            if x < 5 {
                Rgb::new(0, 0, 0)
            } else {
                Rgb::new(255, 255, 255)
            }
        });
        let balanced = LabelMap::from_fn(10, 1, |x, _| u32::from(x >= 5));
        let lopsided = LabelMap::from_fn(10, 1, |x, _| u32::from(x >= 9));
        assert!(unsupervised_score(&img, &balanced) > unsupervised_score(&img, &lopsided));
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_candidate_list_is_rejected() {
        let _ = AutoThetaSearch::new(Vec::new());
    }
}
