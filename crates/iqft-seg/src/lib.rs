#![warn(missing_docs)]
//! `iqft-seg` — the IQFT-inspired unsupervised image segmentation algorithm.
//!
//! This crate is the core contribution of the reproduced paper
//! (*"Inverse Quantum Fourier Transform Inspired Algorithm for Unsupervised
//! Image Segmentation"*, IPPS 2023).  The idea: encode a pixel's channel
//! intensities as the relative phases of a small quantum register, apply the
//! inverse quantum Fourier transform, and classify the pixel by the most
//! probable computational basis state.  Because the register is a product
//! state with known phases, the whole pipeline collapses to a tiny classical
//! computation per pixel — no training, no iteration, no neighbourhood
//! dependence.
//!
//! # Modules
//!
//! * [`theta`] — the angle parameters `(θ1, θ2, θ3)` and the θ ↔ threshold
//!   correspondence of the paper's eq. 15/16 (Table I).
//! * [`rgb`] — Algorithm 1: the 3-qubit, 8-label RGB segmenter.
//! * [`gray`] — the 1-qubit, 2-class grayscale segmenter (eqs. 12–14),
//!   including the multi-threshold behaviour of eq. 16.
//! * [`lut`] — a lookup-table accelerated RGB segmenter (identical output,
//!   amortises repeated colours).
//! * [`phase_table`] — an *eager* 3 × 256-entry phase table precomputed per
//!   [`ThetaParams`]: steady-state classification is three table lookups,
//!   byte-identical to the exact path (the throughput pipeline's fast path).
//! * [`quant`] — a fixed-point, log-space quantization of the phase table
//!   with runtime-dispatched `std::arch` SIMD kernels (SSE2/SSE4.1/AVX2)
//!   and a per-pixel f64 exactness oracle: still bit-identical to the exact
//!   path, by construction (the fastest classifier in the workspace).
//! * [`classifier`] — [`IqftClassifier`], the concrete classifier behind a
//!   `seg_engine::ClassifierKind`: one enum that plan-driven callers build
//!   from the `--classifier` flag (all variants label identically).
//! * [`foreground`] — reduction of a multi-label segmentation to a
//!   foreground/background mask for mIOU evaluation.
//! * [`analysis`] — segment-count analysis used for the paper's Table II.
//! * [`auto_theta`] — per-image θ selection (the paper's Fig. 10 adjustment).
//! * [`engine`] (re-export of the `seg-engine` crate) — the backend-aware
//!   [`SegmentEngine`] that executes these segmenters with chunk-parallel
//!   pixel classification and batched multi-image sweeps.  Every segmenter
//!   here routes its whole-image calls through an engine; pick the backend
//!   with `with_backend` / `with_engine` or the harness's
//!   `--backend serial|threads|rayon --threads N` flags.
//!
//! # Quickstart
//!
//! ```
//! use imaging::{RgbImage, Rgb, Segmenter};
//! use iqft_seg::rgb::IqftRgbSegmenter;
//! use iqft_seg::theta::ThetaParams;
//!
//! // A toy image: dark left half, bright right half.
//! let img = RgbImage::from_fn(16, 8, |x, _| {
//!     if x < 8 { Rgb::new(20, 20, 20) } else { Rgb::new(240, 240, 240) }
//! });
//! let segmenter = IqftRgbSegmenter::new(ThetaParams::uniform(std::f64::consts::PI));
//! let labels = segmenter.segment_rgb(&img);
//! assert_ne!(labels.get(0, 0), labels.get(15, 0));
//! ```

pub mod analysis;
pub mod auto_theta;
pub mod classifier;
pub mod foreground;
pub mod gray;
pub mod lut;
pub mod phase_table;
pub mod quant;
pub mod rgb;
pub mod theta;

/// The backend-aware parallel execution engine (the `seg-engine` crate).
pub use seg_engine as engine;

pub use analysis::max_segments_for_theta;
pub use auto_theta::AutoThetaSearch;
pub use classifier::IqftClassifier;
pub use foreground::{reduce_to_foreground, ForegroundPolicy};
pub use gray::IqftGraySegmenter;
pub use lut::LutRgbSegmenter;
pub use phase_table::PhaseTable;
pub use quant::{QuantizedPhaseTable, SimdLevel};
pub use rgb::IqftRgbSegmenter;
pub use seg_engine::SegmentEngine;
pub use theta::ThetaParams;

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::{Rgb, RgbImage, Segmenter};

    /// The doc example as a regular test so it also runs under `--no-doc`.
    #[test]
    fn quickstart_separates_dark_and_bright_halves() {
        let img = RgbImage::from_fn(16, 8, |x, _| {
            if x < 8 {
                Rgb::new(20, 20, 20)
            } else {
                Rgb::new(240, 240, 240)
            }
        });
        let segmenter = IqftRgbSegmenter::new(ThetaParams::uniform(std::f64::consts::PI));
        let labels = segmenter.segment_rgb(&img);
        assert_ne!(labels.get(0, 0), labels.get(15, 0));
        // Left half is homogeneous, right half is homogeneous.
        assert_eq!(labels.get(0, 0), labels.get(7, 7));
        assert_eq!(labels.get(8, 0), labels.get(15, 7));
    }
}
