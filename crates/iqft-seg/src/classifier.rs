//! [`IqftClassifier`] — the concrete classifier behind a [`ClassifierKind`].
//!
//! `seg-engine`'s [`SegmentPlan`] names classifier
//! *families* without knowing any algorithm; this module materialises the
//! paper's RGB algorithm for each family.  All variants label every
//! pixel identically (the LUT, phase-table and quantized paths are
//! byte-identical to the exact path by construction), so a plan can switch
//! kinds freely without changing a single output label — only throughput
//! changes.

use crate::lut::LutRgbSegmenter;
use crate::phase_table::PhaseTable;
use crate::quant::{QuantizedPhaseTable, SimdLevel};
use crate::rgb::IqftRgbSegmenter;
use crate::theta::ThetaParams;
use imaging::{LabelMap, Luma, PixelClassifier, Rgb, RgbImage, Segmenter};
use seg_engine::{ClassifierKind, SegmentPlan};

/// The paper's RGB algorithm materialised for a
/// [`ClassifierKind`]: one enum that any plan-driven caller (the throughput
/// pipeline, the bench sweeps, the CLI) can build from a flag and hand to an
/// engine.
///
/// # Example
///
/// ```
/// use imaging::{Rgb, RgbImage};
/// use iqft_seg::IqftClassifier;
/// use seg_engine::{ClassifierKind, SegmentPlan, Tiling};
///
/// let img = RgbImage::from_fn(40, 30, |x, y| Rgb::new((x * 6) as u8, (y * 8) as u8, 77));
/// let plan = SegmentPlan::default().with_tiling(Tiling::Tiles { width: 16, height: 16 });
/// let reference = IqftClassifier::paper_default(ClassifierKind::Exact).segment_rgb(&img);
/// for kind in ClassifierKind::ALL {
///     let classifier = IqftClassifier::paper_default(kind);
///     // Same labels for every kind, whole-image or tiled.
///     assert_eq!(plan.segment_rgb(&classifier, &img), reference);
/// }
/// ```
#[derive(Debug)]
pub enum IqftClassifier {
    /// Direct statevector-equivalent math per pixel.
    Exact(IqftRgbSegmenter),
    /// Lazy per-colour memoisation around the exact segmenter.
    Lut(LutRgbSegmenter),
    /// Eager precomputed phase table (three lookups per pixel).
    Table(PhaseTable),
    /// Fixed-point quantized table pinned to the portable scalar kernel.
    Quant(QuantizedPhaseTable),
    /// Fixed-point quantized table with runtime-dispatched `std::arch`
    /// SIMD kernels (scalar fallback off x86-64; `IQFT_SIMD` pins a level).
    Simd(QuantizedPhaseTable),
}

impl IqftClassifier {
    /// Builds the classifier family `kind` for the given angle parameters.
    pub fn build(kind: ClassifierKind, thetas: ThetaParams) -> Self {
        let exact = IqftRgbSegmenter::new(thetas);
        match kind {
            ClassifierKind::Exact => IqftClassifier::Exact(exact),
            ClassifierKind::Lut => IqftClassifier::Lut(LutRgbSegmenter::new(exact)),
            ClassifierKind::Table => IqftClassifier::Table(PhaseTable::from_segmenter(&exact)),
            ClassifierKind::Quant => IqftClassifier::Quant(
                QuantizedPhaseTable::from_segmenter(&exact).with_simd(SimdLevel::Scalar),
            ),
            ClassifierKind::Simd => {
                IqftClassifier::Simd(QuantizedPhaseTable::from_segmenter(&exact))
            }
        }
    }

    /// Builds the classifier family `kind` with the paper's headline
    /// configuration (`θ1 = θ2 = θ3 = π`).
    pub fn paper_default(kind: ClassifierKind) -> Self {
        Self::build(kind, ThetaParams::paper_default())
    }

    /// Builds the classifier a plan selects (its
    /// [`SegmentPlan::classifier`] kind) with the paper's headline angles.
    pub fn for_plan(plan: &SegmentPlan) -> Self {
        Self::paper_default(plan.classifier())
    }

    /// The [`ClassifierKind`] this classifier materialises.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            IqftClassifier::Exact(_) => ClassifierKind::Exact,
            IqftClassifier::Lut(_) => ClassifierKind::Lut,
            IqftClassifier::Table(_) => ClassifierKind::Table,
            IqftClassifier::Quant(_) => ClassifierKind::Quant,
            IqftClassifier::Simd(_) => ClassifierKind::Simd,
        }
    }

    /// The angle parameters the classifier was built for.
    pub fn thetas(&self) -> ThetaParams {
        match self {
            IqftClassifier::Exact(seg) => seg.thetas(),
            IqftClassifier::Lut(seg) => seg.inner().thetas(),
            IqftClassifier::Table(table) => table.thetas(),
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => table.thetas(),
        }
    }

    /// Total pixels the quantized variants routed through their f64
    /// exactness oracle because the quantized arg-max was ambiguous
    /// (see [`QuantizedPhaseTable::fallback_pixels`]).  Zero for the
    /// non-quantized variants, which have no fallback path.
    pub fn quant_fallback_pixels(&self) -> u64 {
        match self {
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => table.fallback_pixels(),
            _ => 0,
        }
    }

    /// The SIMD kernel the quantized variants dispatch to (`None` for the
    /// non-quantized variants).
    pub fn simd_level(&self) -> Option<SimdLevel> {
        match self {
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => Some(table.simd_level()),
            _ => None,
        }
    }

    /// Classifies one pixel — identical across all variants.
    pub fn classify(&self, pixel: Rgb<u8>) -> u32 {
        match self {
            IqftClassifier::Exact(seg) => seg.classify(pixel),
            IqftClassifier::Lut(seg) => seg.classify(pixel),
            IqftClassifier::Table(table) => table.classify(pixel),
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => table.classify(pixel),
        }
    }

    /// Segments a whole image on the wrapped segmenter's engine.
    pub fn segment_rgb(&self, img: &RgbImage) -> LabelMap {
        match self {
            IqftClassifier::Exact(seg) => seg.segment_rgb(img),
            IqftClassifier::Lut(seg) => seg.segment_rgb(img),
            IqftClassifier::Table(table) => table.segment_rgb(img),
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => table.segment_rgb(img),
        }
    }
}

impl PixelClassifier for IqftClassifier {
    fn classify_rgb_pixel(&self, pixel: Rgb<u8>) -> u32 {
        self.classify(pixel)
    }

    fn classify_gray_pixel(&self, pixel: Luma<u8>) -> u32 {
        let v = pixel.value();
        self.classify(Rgb::new(v, v, v))
    }

    fn classify_rgb_slice_into(&self, pixels: &[Rgb<u8>], out: &mut [u32]) {
        match self {
            // The quantized variants have a batched row kernel; forward so
            // every bulk path (engine chunks, tile rows) picks it up.
            IqftClassifier::Quant(table) | IqftClassifier::Simd(table) => {
                table.classify_slice(pixels, out);
            }
            _ => {
                assert_eq!(
                    pixels.len(),
                    out.len(),
                    "label slice does not match the pixel slice"
                );
                for (label, &pixel) in out.iter_mut().zip(pixels) {
                    *label = self.classify(pixel);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_engine::{SegmentEngine, Tiling};

    fn test_image() -> RgbImage {
        RgbImage::from_fn(31, 22, |x, y| {
            Rgb::new((x * 9) as u8, (y * 13) as u8, ((x * y) % 256) as u8)
        })
    }

    #[test]
    fn every_kind_builds_its_matching_variant() {
        for kind in ClassifierKind::ALL {
            let classifier = IqftClassifier::paper_default(kind);
            assert_eq!(classifier.kind(), kind);
            assert!(
                (classifier.thetas().theta1 - std::f64::consts::PI).abs() < 1e-12,
                "{kind}"
            );
        }
    }

    #[test]
    fn all_kinds_classify_identically() {
        let thetas = ThetaParams::new(1.3, 2.9, 0.4);
        let exact = IqftClassifier::build(ClassifierKind::Exact, thetas);
        for kind in [
            ClassifierKind::Lut,
            ClassifierKind::Table,
            ClassifierKind::Quant,
            ClassifierKind::Simd,
        ] {
            let other = IqftClassifier::build(kind, thetas);
            for pixel in [
                Rgb::new(0, 0, 0),
                Rgb::new(255, 255, 255),
                Rgb::new(13, 200, 77),
                Rgb::new(254, 1, 128),
            ] {
                assert_eq!(other.classify(pixel), exact.classify(pixel), "{kind}");
                assert_eq!(
                    other.classify_rgb_pixel(pixel),
                    exact.classify_rgb_pixel(pixel)
                );
            }
            let v = Luma(190u8);
            assert_eq!(other.classify_gray_pixel(v), exact.classify_gray_pixel(v));
        }
    }

    #[test]
    fn plan_dispatch_is_byte_identical_across_kinds_and_tilings() {
        let img = test_image();
        let reference = IqftClassifier::paper_default(ClassifierKind::Exact).segment_rgb(&img);
        for kind in ClassifierKind::ALL {
            let classifier = IqftClassifier::paper_default(kind);
            for tiling in [
                Tiling::Whole,
                Tiling::Tiles {
                    width: 8,
                    height: 8,
                },
                Tiling::Tiles {
                    width: 5,
                    height: 22,
                },
            ] {
                let plan = SegmentPlan::default()
                    .with_classifier(kind)
                    .with_tiling(tiling);
                assert_eq!(
                    plan.segment_rgb(&classifier, &img),
                    reference,
                    "{kind} {tiling}"
                );
            }
        }
    }

    #[test]
    fn for_plan_builds_the_planned_kind() {
        let plan = SegmentPlan::default().with_classifier(ClassifierKind::Lut);
        assert_eq!(IqftClassifier::for_plan(&plan).kind(), ClassifierKind::Lut);
        // And the classifier runs through an engine like any PixelClassifier.
        let img = test_image();
        let labels = SegmentEngine::serial().segment_rgb(&IqftClassifier::for_plan(&plan), &img);
        assert_eq!(labels.dimensions(), img.dimensions());
    }

    #[test]
    fn quant_pins_scalar_and_simd_dispatches() {
        let quant = IqftClassifier::paper_default(ClassifierKind::Quant);
        assert_eq!(quant.simd_level(), Some(SimdLevel::Scalar));
        let simd = IqftClassifier::paper_default(ClassifierKind::Simd);
        assert!(simd.simd_level().unwrap().is_supported());
        let exact = IqftClassifier::paper_default(ClassifierKind::Exact);
        assert_eq!(exact.simd_level(), None);
        assert_eq!(exact.quant_fallback_pixels(), 0);
    }

    #[test]
    fn fallback_counter_surfaces_through_the_enum() {
        // White under θ = π ties states 3 and 5 exactly, so each white
        // pixel consults the oracle — the counter must be visible through
        // the enum accessor.
        let quant = IqftClassifier::paper_default(ClassifierKind::Quant);
        let white = Rgb::new(255, 255, 255);
        let mut out = [0u32; 3];
        quant.classify_rgb_slice_into(&[white; 3], &mut out);
        assert_eq!(out, [3, 3, 3]);
        assert_eq!(quant.quant_fallback_pixels(), 3);
    }
}
