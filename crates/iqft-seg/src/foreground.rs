//! Reduction of a multi-label segmentation to a foreground/background mask.
//!
//! The paper evaluates *foreground/background* mIOU although Algorithm 1
//! emits up to eight labels (and K-means emits `k`).  This module makes the
//! reduction explicit and configurable so the evaluation harness can state
//! exactly which rule produced each number (see DESIGN.md §5.1).

use imaging::{color, labels, LabelMap, RgbImage, VOID_LABEL};

/// Strategy for mapping a multi-label segmentation to a binary mask
/// (1 = foreground, 0 = background, void preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForegroundPolicy {
    /// The most frequent label becomes background; every other label becomes
    /// foreground.  This is the default and mirrors how an unsupervised
    /// output is binarised in practice (the object of interest is usually
    /// smaller than the background).
    #[default]
    LargestIsBackground,
    /// Labels are ordered by their mean luminance in the source image and
    /// split at the point that maximises the between-class variance (an
    /// Otsu-style split on label statistics).  The brighter side becomes
    /// foreground.  Requires the source image.
    BestBinarySplit,
    /// Each label is assigned to foreground if the majority of its pixels are
    /// foreground in the ground truth.  This is an oracle upper bound used
    /// only in ablation reporting, never in the headline comparison.
    Oracle,
}

/// Reduces `segmentation` to a binary mask according to `policy`.
///
/// * `image` is required by [`ForegroundPolicy::BestBinarySplit`] (ignored
///   otherwise); when absent the policy falls back to
///   [`ForegroundPolicy::LargestIsBackground`].
/// * `ground_truth` is required by [`ForegroundPolicy::Oracle`] (ignored
///   otherwise); when absent the policy falls back to
///   [`ForegroundPolicy::LargestIsBackground`].
pub fn reduce_to_foreground(
    segmentation: &LabelMap,
    policy: ForegroundPolicy,
    image: Option<&RgbImage>,
    ground_truth: Option<&LabelMap>,
) -> LabelMap {
    match policy {
        ForegroundPolicy::LargestIsBackground => largest_is_background(segmentation),
        ForegroundPolicy::BestBinarySplit => match image {
            Some(img) => best_binary_split(segmentation, img),
            None => largest_is_background(segmentation),
        },
        ForegroundPolicy::Oracle => match ground_truth {
            Some(gt) => oracle_assignment(segmentation, gt),
            None => largest_is_background(segmentation),
        },
    }
}

fn largest_is_background(segmentation: &LabelMap) -> LabelMap {
    match labels::dominant_label(segmentation) {
        Some(background) => segmentation.map(|l| {
            if l == VOID_LABEL {
                VOID_LABEL
            } else {
                u32::from(l != background)
            }
        }),
        None => segmentation.clone(),
    }
}

fn best_binary_split(segmentation: &LabelMap, image: &RgbImage) -> LabelMap {
    segmentation
        .check_same_shape(image)
        .expect("segmentation and image must share dimensions");
    // Mean luminance and pixel count per label.
    let census = labels::label_census(segmentation);
    let mut stats: Vec<(u32, f64, usize)> = Vec::new(); // (label, mean luma, count)
    for (label, count) in census {
        if label == VOID_LABEL {
            continue;
        }
        let mut sum = 0.0;
        for (i, &l) in segmentation.as_slice().iter().enumerate() {
            if l == label {
                sum += color::luma_of(image.as_slice()[i]);
            }
        }
        stats.push((label, sum / count as f64, count));
    }
    if stats.len() < 2 {
        return largest_is_background(segmentation);
    }
    stats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    // Try every split point; maximise between-class variance
    // ω0·ω1·(μ0 − μ1)² over the label-level statistics.
    let total: usize = stats.iter().map(|s| s.2).sum();
    let mut best_split = 1usize;
    let mut best_score = f64::MIN;
    for split in 1..stats.len() {
        let (low, high) = stats.split_at(split);
        let w0: usize = low.iter().map(|s| s.2).sum();
        let w1: usize = high.iter().map(|s| s.2).sum();
        let mu0: f64 = low.iter().map(|s| s.1 * s.2 as f64).sum::<f64>() / w0 as f64;
        let mu1: f64 = high.iter().map(|s| s.1 * s.2 as f64).sum::<f64>() / w1 as f64;
        let score = (w0 as f64 / total as f64) * (w1 as f64 / total as f64) * (mu0 - mu1).powi(2);
        if score > best_score {
            best_score = score;
            best_split = split;
        }
    }
    // The brighter side (above the split) is foreground.
    let foreground: Vec<u32> = stats[best_split..].iter().map(|s| s.0).collect();
    labels::binarize(segmentation, &foreground)
}

fn oracle_assignment(segmentation: &LabelMap, ground_truth: &LabelMap) -> LabelMap {
    segmentation
        .check_same_shape(ground_truth)
        .expect("segmentation and ground truth must share dimensions");
    let census = labels::label_census(segmentation);
    let mut foreground = Vec::new();
    for (label, _) in census {
        if label == VOID_LABEL {
            continue;
        }
        let mut fg = 0usize;
        let mut bg = 0usize;
        for (&l, &g) in segmentation
            .as_slice()
            .iter()
            .zip(ground_truth.as_slice().iter())
        {
            if l != label || g == VOID_LABEL {
                continue;
            }
            if g != 0 {
                fg += 1;
            } else {
                bg += 1;
            }
        }
        if fg > bg {
            foreground.push(label);
        }
    }
    labels::binarize(segmentation, &foreground)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imaging::Rgb;

    /// 6x4 segmentation: label 0 fills the border (14 px), label 3 a bright
    /// blob (6 px), label 5 a small dark blob (4 px).
    fn fixture() -> (LabelMap, RgbImage, LabelMap) {
        let mut seg = LabelMap::new(6, 4, 0);
        for y in 1..3 {
            for x in 1..4 {
                seg.set(x, y, 3);
            }
        }
        seg.set(4, 1, 5);
        seg.set(4, 2, 5);
        seg.set(5, 1, 5);
        seg.set(5, 2, 5);
        let img = RgbImage::from_fn(6, 4, |x, y| match seg.get(x, y) {
            3 => Rgb::new(240, 240, 240), // bright object
            5 => Rgb::new(5, 5, 5),       // dark object
            _ => Rgb::new(100, 100, 100), // mid background
        });
        // Ground truth: label-3 blob and label-5 blob are both foreground.
        let gt = seg.map(|l| u32::from(l != 0));
        (seg, img, gt)
    }

    #[test]
    fn largest_is_background_marks_minority_labels_foreground() {
        let (seg, _, _) = fixture();
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert_eq!(bin.get(0, 0), 0);
        assert_eq!(bin.get(2, 1), 1);
        assert_eq!(bin.get(4, 2), 1);
        assert_eq!(imaging::labels::distinct_labels(&bin), 2);
    }

    #[test]
    fn largest_is_background_preserves_void() {
        let (mut seg, _, _) = fixture();
        seg.set(0, 3, VOID_LABEL);
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert_eq!(bin.get(0, 3), VOID_LABEL);
    }

    #[test]
    fn best_binary_split_separates_by_brightness() {
        let (seg, img, _) = fixture();
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::BestBinarySplit, Some(&img), None);
        // The bright blob is foreground; the dark blob joins the (darker)
        // background side of the split.
        assert_eq!(bin.get(2, 1), 1);
        assert_eq!(bin.get(0, 0), 0);
        assert_eq!(bin.get(4, 1), 0);
    }

    #[test]
    fn best_binary_split_without_image_falls_back() {
        let (seg, _, _) = fixture();
        let with_fallback =
            reduce_to_foreground(&seg, ForegroundPolicy::BestBinarySplit, None, None);
        let largest = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert_eq!(with_fallback, largest);
    }

    #[test]
    fn oracle_follows_ground_truth_majorities() {
        let (seg, _, gt) = fixture();
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::Oracle, None, Some(&gt));
        assert_eq!(bin.get(2, 1), 1);
        assert_eq!(bin.get(4, 1), 1);
        assert_eq!(bin.get(0, 0), 0);
    }

    #[test]
    fn oracle_without_ground_truth_falls_back() {
        let (seg, _, _) = fixture();
        let fallback = reduce_to_foreground(&seg, ForegroundPolicy::Oracle, None, None);
        let largest = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert_eq!(fallback, largest);
    }

    #[test]
    fn single_label_segmentation_becomes_all_background() {
        let seg = LabelMap::new(5, 5, 7);
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert!(bin.pixels().all(|&l| l == 0));
    }

    #[test]
    fn already_binary_input_is_preserved_up_to_naming() {
        // A binary map whose foreground is the minority stays semantically
        // the same under LargestIsBackground.
        let seg = LabelMap::from_fn(10, 1, |x, _| u32::from(x >= 7));
        let bin = reduce_to_foreground(&seg, ForegroundPolicy::LargestIsBackground, None, None);
        assert_eq!(bin, seg);
    }

    #[test]
    fn policy_default_is_largest_is_background() {
        assert_eq!(
            ForegroundPolicy::default(),
            ForegroundPolicy::LargestIsBackground
        );
    }
}
