//! Angle parameters and the θ ↔ threshold correspondence.
//!
//! For the grayscale (1-qubit) algorithm the class boundary sits where
//! `cos(I·θ) = 0`, i.e. at intensities `I_th = (4k ± 1)·π / (2θ)` for integer
//! `k ≥ 0` with `I_th ≤ 1` (the paper's eq. 15).  Choosing θ therefore *is*
//! choosing a set of thresholds — one for small θ, several for large θ
//! (eq. 16) — which is what the paper's Table I tabulates and what makes the
//! method behave like a generalised thresholding technique.

use std::f64::consts::PI;

/// The three angle parameters `(θ1, θ2, θ3)` of Algorithm 1.
///
/// `θ1` scales the red channel (phase `γ`), `θ2` the green channel (phase
/// `β`), and `θ3` the blue channel (phase `α`), exactly as in Algorithm 1
/// line 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaParams {
    /// Red-channel angle `θ1` (radians).
    pub theta1: f64,
    /// Green-channel angle `θ2` (radians).
    pub theta2: f64,
    /// Blue-channel angle `θ3` (radians).
    pub theta3: f64,
}

impl ThetaParams {
    /// Creates parameters from the three angles.
    pub fn new(theta1: f64, theta2: f64, theta3: f64) -> Self {
        Self {
            theta1,
            theta2,
            theta3,
        }
    }

    /// All three angles equal to `theta` — the configuration used throughout
    /// the paper's Table II sweep and for the Table III comparison (θ = π).
    pub fn uniform(theta: f64) -> Self {
        Self::new(theta, theta, theta)
    }

    /// The "mixed" configuration of Table II / Fig. 6:
    /// `θ1 = π/4, θ2 = π/2, θ3 = π`.
    pub fn mixed() -> Self {
        Self::new(PI / 4.0, PI / 2.0, PI)
    }

    /// The default used in the paper's headline comparison (θ = π).
    pub fn paper_default() -> Self {
        Self::uniform(PI)
    }

    /// Returns the angles as `[θ1, θ2, θ3]`.
    pub fn as_array(&self) -> [f64; 3] {
        [self.theta1, self.theta2, self.theta3]
    }
}

impl Default for ThetaParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// All grayscale thresholds `I_th ∈ (0, 1]` implied by angle `theta`
/// (eq. 15): `I_th = (4k ± 1)·π / (2θ)`, sorted ascending and deduplicated.
///
/// Returns an empty vector when `theta` is too small for any threshold to lie
/// in `(0, 1]` (every pixel then falls in the same class).
pub fn thresholds_for_theta(theta: f64) -> Vec<f64> {
    if theta <= 0.0 {
        return Vec::new();
    }
    let mut thresholds = Vec::new();
    let mut k = 0i64;
    loop {
        let mut added_any = false;
        for sign in [-1.0, 1.0] {
            let numerator = 4.0 * k as f64 + sign;
            if numerator <= 0.0 {
                continue;
            }
            let ith = numerator * PI / (2.0 * theta);
            if ith > 0.0 && ith <= 1.0 + 1e-12 {
                thresholds.push(ith.min(1.0));
                added_any = true;
            }
        }
        // Once even the smaller branch (4k - 1) exceeds 1, no larger k helps.
        let smallest_next = (4.0 * (k + 1) as f64 - 1.0) * PI / (2.0 * theta);
        if !added_any && smallest_next > 1.0 {
            break;
        }
        k += 1;
        if k > 10_000 {
            break; // Defensive bound; unreachable for sane θ.
        }
    }
    thresholds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    thresholds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    thresholds
}

/// The single threshold implied by `theta` when exactly one exists, i.e. the
/// `k = 0`, `+1` branch `I_th = π / (2θ)` (the regime of the upper rows of
/// Table I).
pub fn primary_threshold(theta: f64) -> Option<f64> {
    thresholds_for_theta(theta).into_iter().next()
}

/// The angle θ that places the *single* class boundary at `threshold`
/// (inverting eq. 15 with `k = 0`): `θ = π / (2·I_th)`.
///
/// This is the conversion used for the paper's Fig. 7, where the Otsu
/// threshold of an image is converted to an equivalent θ and the two methods
/// produce identical masks.
pub fn theta_for_threshold(threshold: f64) -> f64 {
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "threshold must lie in (0, 1], got {threshold}"
    );
    PI / (2.0 * threshold)
}

/// One row of the paper's Table I: the angle and its threshold(s).
#[derive(Debug, Clone, PartialEq)]
pub struct ThetaThresholdRow {
    /// The angle parameter θ.
    pub theta: f64,
    /// A human-readable description of θ (e.g. "3π/4").
    pub theta_label: String,
    /// The implied thresholds in ascending order.
    pub thresholds: Vec<f64>,
}

/// Regenerates the paper's Table I (θ vs. threshold value, including the
/// multi-threshold rows for 7π/4 and 2π).
pub fn table1_rows() -> Vec<ThetaThresholdRow> {
    let entries: [(f64, &str); 6] = [
        (3.0 * PI / 4.0, "3π/4"),
        (PI, "π"),
        (5.0 * PI / 4.0, "5π/4"),
        (3.0 * PI / 2.0, "3π/2"),
        (7.0 * PI / 4.0, "7π/4"),
        (2.0 * PI, "2π"),
    ];
    entries
        .into_iter()
        .map(|(theta, label)| ThetaThresholdRow {
            theta,
            theta_label: label.to_string(),
            thresholds: thresholds_for_theta(theta),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn theta_params_constructors() {
        let p = ThetaParams::uniform(1.5);
        assert_eq!(p.as_array(), [1.5, 1.5, 1.5]);
        let m = ThetaParams::mixed();
        assert_close(m.theta1, PI / 4.0, 1e-12);
        assert_close(m.theta2, PI / 2.0, 1e-12);
        assert_close(m.theta3, PI, 1e-12);
        assert_eq!(ThetaParams::default(), ThetaParams::paper_default());
        assert_close(ThetaParams::default().theta1, PI, 1e-12);
    }

    #[test]
    fn table1_single_threshold_rows_match_paper() {
        // Paper Table I: 3π/4 → 0.667, π → 0.5, 5π/4 → 0.4, 3π/2 → 0.333.
        assert_close(primary_threshold(3.0 * PI / 4.0).unwrap(), 2.0 / 3.0, 1e-9);
        assert_close(primary_threshold(PI).unwrap(), 0.5, 1e-12);
        assert_close(primary_threshold(5.0 * PI / 4.0).unwrap(), 0.4, 1e-9);
        assert_close(primary_threshold(3.0 * PI / 2.0).unwrap(), 1.0 / 3.0, 1e-9);
    }

    #[test]
    fn table1_multi_threshold_rows_match_paper() {
        // 7π/4 → {0.285…, 0.857…}; 2π → {0.25, 0.75}.
        let t = thresholds_for_theta(7.0 * PI / 4.0);
        assert_eq!(t.len(), 2);
        assert_close(t[0], 2.0 / 7.0, 1e-9);
        assert_close(t[1], 6.0 / 7.0, 1e-9);
        let t = thresholds_for_theta(2.0 * PI);
        assert_eq!(t, vec![0.25, 0.75]);
    }

    #[test]
    fn eq16_four_thresholds_for_theta_4pi() {
        // Paper eq. 16: θ = 4π gives thresholds 1/8, 3/8, 5/8, 7/8.
        let t = thresholds_for_theta(4.0 * PI);
        assert_eq!(t.len(), 4);
        for (got, want) in t.iter().zip([0.125, 0.375, 0.625, 0.875]) {
            assert_close(*got, want, 1e-12);
        }
    }

    #[test]
    fn small_theta_has_no_threshold() {
        assert!(thresholds_for_theta(PI / 4.0).is_empty());
        assert!(thresholds_for_theta(0.0).is_empty());
        assert!(thresholds_for_theta(-1.0).is_empty());
        assert!(primary_threshold(PI / 4.0).is_none());
    }

    #[test]
    fn theta_for_threshold_inverts_primary_threshold() {
        for threshold in [0.1, 0.25, 0.4465, 0.4911, 0.5, 0.9, 1.0] {
            let theta = theta_for_threshold(threshold);
            let back = primary_threshold(theta).unwrap();
            assert_close(back, threshold, 1e-9);
        }
        // The paper's Fig. 7 examples: Ith = 0.4465 → θ ≈ 1.1197π,
        // Ith = 0.4911 → θ ≈ 1.0180π.
        assert_close(theta_for_threshold(0.4465) / PI, 1.1198, 2e-4);
        assert_close(theta_for_threshold(0.4911) / PI, 1.0181, 2e-4);
    }

    #[test]
    #[should_panic(expected = "threshold must lie in (0, 1]")]
    fn theta_for_threshold_rejects_zero() {
        let _ = theta_for_threshold(0.0);
    }

    #[test]
    fn thresholds_are_sorted_and_within_unit_interval() {
        for i in 1..=64 {
            let theta = i as f64 * 0.25;
            let t = thresholds_for_theta(theta);
            assert!(t.windows(2).all(|w| w[0] < w[1]), "theta={theta}");
            assert!(t.iter().all(|&x| x > 0.0 && x <= 1.0), "theta={theta}");
        }
    }

    #[test]
    fn table1_rows_structure() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].theta_label, "3π/4");
        assert_eq!(rows[4].thresholds.len(), 2);
        assert_eq!(rows[5].thresholds.len(), 2);
        for row in &rows {
            assert!(!row.thresholds.is_empty());
        }
    }
}
