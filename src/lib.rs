//! `iqft-repro` — umbrella crate for the reproduction of
//! *"Inverse Quantum Fourier Transform Inspired Algorithm for Unsupervised
//! Image Segmentation"* (IPPS 2023).
//!
//! This crate re-exports the workspace's public surface so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`iqft_seg`] — the IQFT-inspired segmenters (the paper's contribution);
//! * [`imaging`] — the imaging substrate (containers, I/O, drawing, labels);
//! * [`quantum`] — the state-vector simulator and QFT/IQFT circuits;
//! * [`baselines`] — K-means and Otsu baselines;
//! * [`metrics`] — foreground/background mIOU and friends;
//! * [`datasets`] — synthetic VOC-like / xVIEW2-like / balls datasets;
//! * [`xpar`] — the parallel execution substrate;
//! * [`seg_engine`] — the backend-aware engine and the `SegmentPlan`
//!   strategy dispatch layer;
//! * [`iqft_pipeline`] — the batched throughput pipeline (bounded queue,
//!   label arena, per-request entry point, and the sharded
//!   content-addressed result cache);
//! * [`iqft_serve`] — the TCP segmentation service (wire protocol v2 with
//!   cached ops and pipelining, server, client).
//!
//! See the `examples/` directory for runnable entry points, the
//! `iqft-experiments` binary (in `crates/experiments`) for the full
//! table/figure reproduction harness, and `docs/ARCHITECTURE.md` for the
//! crate dependency graph and data flow.
//!
//! # Example
//!
//! ```
//! use iqft_repro::imaging::{Rgb, RgbImage, Segmenter};
//! use iqft_repro::iqft_seg::IqftRgbSegmenter;
//!
//! let img = RgbImage::from_fn(8, 8, |x, _| {
//!     if x < 4 { Rgb::new(10, 10, 10) } else { Rgb::new(240, 240, 240) }
//! });
//! let segmenter = IqftRgbSegmenter::new(iqft_repro::paper_default_theta());
//! let labels = segmenter.segment_rgb(&img);
//! assert_ne!(labels.get(0, 0), labels.get(7, 0));
//! ```

pub use baselines;
pub use datasets;
pub use imaging;
pub use iqft_pipeline;
pub use iqft_seg;
pub use iqft_serve;
pub use metrics;
pub use quantum;
pub use seg_engine;
pub use xpar;

/// The θ configuration used in the paper's headline Table III comparison.
pub fn paper_default_theta() -> iqft_seg::ThetaParams {
    iqft_seg::ThetaParams::paper_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired_up() {
        let theta = super::paper_default_theta();
        assert!((theta.theta1 - std::f64::consts::PI).abs() < 1e-12);
    }
}
